package motif

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Index is the scalable similarity-maintenance structure behind the paper's
// -R algorithm variants (Sec. V-D, Lemma 5).
//
// It enumerates every target subgraph once on the phase-1 graph, then
// maintains, under protector deletions:
//
//   - per-target alive-instance counts (the similarities s(P, t)),
//   - per-edge marginal gains (how many alive instances an edge breaks),
//   - the restricted candidate set of Lemma 5 (edges with positive gain).
//
// Deleting edges can only destroy instances, never create them (this is the
// monotonicity of f), so one up-front enumeration is complete.
type Index struct {
	pattern Pattern
	targets []graph.Edge

	inst      []indexedInstance
	edgeInst  map[graph.Edge][]int32 // edge -> instance IDs containing it
	gain      map[graph.Edge]int     // edge -> alive instances containing it
	perTarget []int                  // s(P, t) per target
	alive     int                    // Σ_t s(P, t)
	deleted   map[graph.Edge]bool    // protector edges already deleted
}

type indexedInstance struct {
	target int32
	edges  [4]graph.Edge
	ne     uint8
	dead   bool
}

// NewIndex builds the index for the given pattern and targets. g must be
// the phase-1 graph (targets already removed); NewIndex returns an error if
// any target link is still present, because that violates the TPP model
// (phase 1 precedes phase 2) and would make W_t sets overlap.
func NewIndex(g *graph.Graph, pattern Pattern, targets []graph.Edge) (*Index, error) {
	for _, t := range targets {
		if g.HasEdgeE(t) {
			return nil, fmt.Errorf("motif: target %v still present in graph; remove all targets (phase 1) before indexing", t)
		}
	}
	ix := &Index{
		pattern:   pattern,
		targets:   append([]graph.Edge(nil), targets...),
		edgeInst:  make(map[graph.Edge][]int32),
		gain:      make(map[graph.Edge]int),
		perTarget: make([]int, len(targets)),
		deleted:   make(map[graph.Edge]bool),
	}
	for i, t := range targets {
		ti := int32(i)
		EnumerateTarget(g, pattern, t, func(edges []graph.Edge) {
			id := int32(len(ix.inst))
			var in indexedInstance
			in.target = ti
			in.ne = uint8(len(edges))
			copy(in.edges[:], edges)
			ix.inst = append(ix.inst, in)
			for _, e := range edges {
				ix.edgeInst[e] = append(ix.edgeInst[e], id)
				ix.gain[e]++
			}
			ix.perTarget[i]++
			ix.alive++
		})
	}
	return ix, nil
}

// Pattern returns the motif pattern the index was built for.
func (ix *Index) Pattern() Pattern { return ix.pattern }

// Targets returns the target list (do not mutate).
func (ix *Index) Targets() []graph.Edge { return ix.targets }

// NumInstances returns the total number of enumerated target subgraphs
// (alive or dead), i.e. s(∅, T).
func (ix *Index) NumInstances() int { return len(ix.inst) }

// TotalSimilarity returns Σ_t s(P, t) for the current deletion state.
func (ix *Index) TotalSimilarity() int { return ix.alive }

// Similarity returns s(P, t) for target index ti.
func (ix *Index) Similarity(ti int) int { return ix.perTarget[ti] }

// Similarities returns a copy of all per-target similarities.
func (ix *Index) Similarities() []int {
	return append([]int(nil), ix.perTarget...)
}

// Gain returns Δ_p: the number of alive instances the deletion of p would
// break (its exact marginal dissimilarity gain — exact because f is
// modular-per-instance once the instance set is fixed).
func (ix *Index) Gain(p graph.Edge) int { return ix.gain[p] }

// GainForTarget splits Δ_p^t for CT/WT greedy: within = alive instances of
// target ti containing p; total = alive instances of any target containing
// p. The paper's Δ_p^t = within + (total − within)/C; with C large this is
// a lexicographic (within, total) ordering, which is how we compare.
func (ix *Index) GainForTarget(p graph.Edge, ti int) (within, total int) {
	for _, id := range ix.edgeInst[p] {
		in := &ix.inst[id]
		if in.dead {
			continue
		}
		total++
		if int(in.target) == ti {
			within++
		}
	}
	return within, total
}

// GainVector returns the per-target marginal gains of deleting p (alive
// instances of each target containing p, indexed by target position) plus
// the total. The slice is freshly allocated only when p touches at least
// one alive instance; otherwise it returns (nil, 0).
func (ix *Index) GainVector(p graph.Edge) (perTarget []int, total int) {
	for _, id := range ix.edgeInst[p] {
		in := &ix.inst[id]
		if in.dead {
			continue
		}
		if perTarget == nil {
			perTarget = make([]int, len(ix.targets))
		}
		perTarget[in.target]++
		total++
	}
	return perTarget, total
}

// Deleted reports whether p was already deleted through the index.
func (ix *Index) Deleted(p graph.Edge) bool { return ix.deleted[p] }

// DeleteEdge records the deletion of protector p, killing every alive
// instance containing it and updating all affected per-edge gains. It
// returns the number of instances broken (the realised Δf). Deleting an
// edge twice is an error in the caller; the second call returns 0.
func (ix *Index) DeleteEdge(p graph.Edge) int {
	if ix.deleted[p] {
		return 0
	}
	ix.deleted[p] = true
	broken := 0
	for _, id := range ix.edgeInst[p] {
		in := &ix.inst[id]
		if in.dead {
			continue
		}
		in.dead = true
		broken++
		ix.perTarget[in.target]--
		ix.alive--
		for _, e := range in.edges[:in.ne] {
			ix.gain[e]--
		}
	}
	return broken
}

// Reset revives every instance and restores the build-time gains and
// per-target similarities, clearing all recorded deletions. It costs
// O(total instance-edge incidences) — far cheaper than the subgraph
// enumeration NewIndex performs — which is what makes one index reusable
// across repeated selection runs on the same graph, targets and pattern.
func (ix *Index) Reset() {
	if len(ix.deleted) == 0 {
		return
	}
	clear(ix.deleted)
	clear(ix.gain)
	for i := range ix.perTarget {
		ix.perTarget[i] = 0
	}
	ix.alive = 0
	for i := range ix.inst {
		in := &ix.inst[i]
		in.dead = false
		ix.perTarget[in.target]++
		ix.alive++
		for _, e := range in.edges[:in.ne] {
			ix.gain[e]++
		}
	}
}

// CandidateEdges returns the Lemma 5 restricted protector set: every edge
// that currently participates in at least one alive target subgraph, in
// canonical order. Edges outside this set have zero marginal gain forever
// (monotone decrease), so greedy never needs to inspect them.
func (ix *Index) CandidateEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(ix.gain))
	for e, gn := range ix.gain {
		if gn > 0 && !ix.deleted[e] {
			out = append(out, e)
		}
	}
	graph.SortEdges(out)
	return out
}

// AllTouchedEdges returns every edge that participated in any instance at
// build time (alive or not), in canonical order. This is the paper's W-edge
// universe used by the RDT baseline.
func (ix *Index) AllTouchedEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(ix.edgeInst))
	for e := range ix.edgeInst {
		out = append(out, e)
	}
	graph.SortEdges(out)
	return out
}

// InstancesOfTarget returns copies of the alive instances owned by target
// ti, for inspection and tests.
func (ix *Index) InstancesOfTarget(ti int) []Instance {
	var out []Instance
	for i := range ix.inst {
		in := &ix.inst[i]
		if in.dead || int(in.target) != ti {
			continue
		}
		out = append(out, Instance{
			Target: in.target,
			Edges:  append([]graph.Edge(nil), in.edges[:in.ne]...),
		})
	}
	return out
}

// ArgmaxGain returns the undeleted edge with the highest gain, breaking
// ties by canonical edge order for determinism, plus its gain. ok is false
// when every remaining gain is zero.
func (ix *Index) ArgmaxGain() (best graph.Edge, bestGain int, ok bool) {
	edges := make([]graph.Edge, 0, len(ix.gain))
	for e, gn := range ix.gain {
		if gn > 0 && !ix.deleted[e] {
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		return graph.Edge{}, 0, false
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Less(edges[j]) })
	for _, e := range edges {
		if gn := ix.gain[e]; gn > bestGain {
			best, bestGain = e, gn
		}
	}
	return best, bestGain, true
}
