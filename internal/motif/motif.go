// Package motif implements the subgraph-pattern machinery of the TPP paper:
// the Triangle, Rectangle and RecTri motifs (paper Fig. 1), enumeration of
// target subgraphs W_t for each target link, and similarity counting
// s(P, t) = |surviving target subgraphs for t|.
//
// Two evaluation paths are provided, mirroring the paper's naive and
// scalable algorithm families:
//
//   - Count / CountAll recompute similarities from the graph on demand
//     (used by the plain SGB/CT/WT greedy algorithms, whose running time
//     Figs. 5–6 measure);
//   - Index pre-enumerates every instance once and maintains per-edge
//     marginal gains incrementally under deletions (used by the scalable
//     -R variants and the CELF extension).
package motif

import (
	"fmt"

	"repro/internal/graph"
)

// Pattern selects which subgraph motif defines a target subgraph.
type Pattern int

const (
	// Triangle (paper Fig. 1a): a 2-path u–w–v completing target (u,v).
	Triangle Pattern = iota
	// Rectangle (paper Fig. 1b): a 3-path u–a–b–v completing target (u,v).
	Rectangle
	// RecTri (paper Fig. 1c): a 2-path u–w–v together with a 3-path that
	// shares the intermediate node w with it.
	RecTri
	// Pentagon extends the family with a 4-path u–a–b–c–v (five distinct
	// nodes): the motif completing (u, v) into a 5-cycle. The paper states
	// TPP is "general and can be used for any subgraph pattern"; Pentagon
	// exercises that generality beyond the three motifs it evaluates.
	Pentagon
)

// Patterns lists the patterns evaluated in the paper, in paper order.
var Patterns = []Pattern{Triangle, Rectangle, RecTri}

// AllPatterns additionally includes the Pentagon extension.
var AllPatterns = []Pattern{Triangle, Rectangle, RecTri, Pentagon}

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case Triangle:
		return "Triangle"
	case Rectangle:
		return "Rectangle"
	case RecTri:
		return "RecTri"
	case Pentagon:
		return "Pentagon"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern converts a (case-sensitive) pattern name to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "Triangle", "triangle":
		return Triangle, nil
	case "Rectangle", "rectangle":
		return Rectangle, nil
	case "RecTri", "rectri":
		return RecTri, nil
	case "Pentagon", "pentagon":
		return Pentagon, nil
	}
	return 0, fmt.Errorf("motif: unknown pattern %q (want Triangle, Rectangle, RecTri or Pentagon)", s)
}

// MaxEdges returns the number of graph edges in one instance of the
// pattern, excluding the (removed) target link itself.
func (p Pattern) MaxEdges() int {
	switch p {
	case Triangle:
		return 2
	case Rectangle:
		return 3
	case RecTri, Pentagon:
		return 4
	}
	panic("motif: invalid pattern")
}

// Instance is one target subgraph: the concrete edges that, together with
// the (already deleted) target link, form the motif. Deleting any one of
// these edges breaks the instance.
type Instance struct {
	Target int32 // index of the owning target in the caller's target list
	Edges  []graph.Edge
}

// EnumerateTarget lists every instance of pattern completing target
// t = (u, v) in g. g must be the phase-1 graph: all target links already
// removed, so instances never contain a target link and W_t sets are
// disjoint across targets by construction.
//
// The visit callback receives the edges of each instance; the slice is
// reused between calls and must not be retained.
func EnumerateTarget(g *graph.Graph, pattern Pattern, t graph.Edge, visit func(edges []graph.Edge)) {
	u, v := t.U, t.V
	switch pattern {
	case Triangle:
		buf := make([]graph.Edge, 2)
		for _, w := range g.CommonNeighbors(u, v) {
			buf[0] = graph.NewEdge(u, w)
			buf[1] = graph.NewEdge(w, v)
			visit(buf)
		}

	case Rectangle:
		buf := make([]graph.Edge, 3)
		for _, a := range g.Neighbors(u) {
			if a == v {
				continue
			}
			g.EachNeighbor(a, func(b graph.NodeID) bool {
				if b == u || b == v || b == a {
					return true
				}
				if g.HasEdge(b, v) {
					buf[0] = graph.NewEdge(u, a)
					buf[1] = graph.NewEdge(a, b)
					buf[2] = graph.NewEdge(b, v)
					visit(buf)
				}
				return true
			})
		}

	case RecTri:
		buf := make([]graph.Edge, 4)
		for _, w := range g.CommonNeighbors(u, v) {
			// orientation 1: triangle on the u side — 3-path u–x–w–v.
			for _, x := range g.CommonNeighbors(u, w) {
				if x == v {
					continue
				}
				buf[0] = graph.NewEdge(u, w)
				buf[1] = graph.NewEdge(w, v)
				buf[2] = graph.NewEdge(u, x)
				buf[3] = graph.NewEdge(x, w)
				visit(buf)
			}
			// orientation 2: triangle on the v side — 3-path u–w–x–v.
			for _, x := range g.CommonNeighbors(w, v) {
				if x == u {
					continue
				}
				buf[0] = graph.NewEdge(u, w)
				buf[1] = graph.NewEdge(w, v)
				buf[2] = graph.NewEdge(w, x)
				buf[3] = graph.NewEdge(x, v)
				visit(buf)
			}
		}

	case Pentagon:
		buf := make([]graph.Edge, 4)
		for _, a := range g.Neighbors(u) {
			if a == v {
				continue
			}
			g.EachNeighbor(a, func(b graph.NodeID) bool {
				if b == u || b == v {
					return true
				}
				g.EachNeighbor(b, func(c graph.NodeID) bool {
					if c == u || c == v || c == a {
						return true
					}
					if g.HasEdge(c, v) {
						buf[0] = graph.NewEdge(u, a)
						buf[1] = graph.NewEdge(a, b)
						buf[2] = graph.NewEdge(b, c)
						buf[3] = graph.NewEdge(c, v)
						visit(buf)
					}
					return true
				})
				return true
			})
		}

	default:
		panic("motif: invalid pattern")
	}
}

// Count returns s(·, t): the number of instances of pattern completing
// target t in the current graph. This is the naive recount path; its cost
// for the motifs here is O(d_u · d_v)-ish, exactly the complexity the paper
// analyses.
func Count(g *graph.Graph, pattern Pattern, t graph.Edge) int {
	n := 0
	EnumerateTarget(g, pattern, t, func([]graph.Edge) { n++ })
	return n
}

// CountAll returns Σ_t s(·, t) over all targets plus the per-target counts.
func CountAll(g *graph.Graph, pattern Pattern, targets []graph.Edge) (total int, perTarget []int) {
	perTarget = make([]int, len(targets))
	for i, t := range targets {
		c := Count(g, pattern, t)
		perTarget[i] = c
		total += c
	}
	return total, perTarget
}

// Instances materialises every instance for every target (phase-1 graph).
func Instances(g *graph.Graph, pattern Pattern, targets []graph.Edge) []Instance {
	var out []Instance
	for i, t := range targets {
		EnumerateTarget(g, pattern, t, func(edges []graph.Edge) {
			cp := make([]graph.Edge, len(edges))
			copy(cp, edges)
			out = append(out, Instance{Target: int32(i), Edges: cp})
		})
	}
	return out
}
