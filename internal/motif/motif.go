// Package motif implements the subgraph-pattern machinery of the TPP paper:
// the Triangle, Rectangle and RecTri motifs (paper Fig. 1), enumeration of
// target subgraphs W_t for each target link, and similarity counting
// s(P, t) = |surviving target subgraphs for t|.
//
// Two evaluation paths are provided, mirroring the paper's naive and
// scalable algorithm families:
//
//   - Count / CountAll recompute similarities from the graph on demand
//     (used by the plain SGB/CT/WT greedy algorithms, whose running time
//     Figs. 5–6 measure);
//   - Index pre-enumerates every instance once and maintains per-edge
//     marginal gains incrementally under deletions (used by the scalable
//     -R variants and the CELF extension).
package motif

import (
	"fmt"

	"repro/internal/graph"
)

// Pattern selects which subgraph motif defines a target subgraph.
type Pattern int

const (
	// Triangle (paper Fig. 1a): a 2-path u–w–v completing target (u,v).
	Triangle Pattern = iota
	// Rectangle (paper Fig. 1b): a 3-path u–a–b–v completing target (u,v).
	Rectangle
	// RecTri (paper Fig. 1c): a 2-path u–w–v together with a 3-path that
	// shares the intermediate node w with it.
	RecTri
	// Pentagon extends the family with a 4-path u–a–b–c–v (five distinct
	// nodes): the motif completing (u, v) into a 5-cycle. The paper states
	// TPP is "general and can be used for any subgraph pattern"; Pentagon
	// exercises that generality beyond the three motifs it evaluates.
	Pentagon
)

// Patterns lists the patterns evaluated in the paper, in paper order.
var Patterns = []Pattern{Triangle, Rectangle, RecTri}

// AllPatterns additionally includes the Pentagon extension.
var AllPatterns = []Pattern{Triangle, Rectangle, RecTri, Pentagon}

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case Triangle:
		return "Triangle"
	case Rectangle:
		return "Rectangle"
	case RecTri:
		return "RecTri"
	case Pentagon:
		return "Pentagon"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern converts a (case-sensitive) pattern name to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "Triangle", "triangle":
		return Triangle, nil
	case "Rectangle", "rectangle":
		return Rectangle, nil
	case "RecTri", "rectri":
		return RecTri, nil
	case "Pentagon", "pentagon":
		return Pentagon, nil
	}
	return 0, fmt.Errorf("motif: unknown pattern %q (want Triangle, Rectangle, RecTri or Pentagon)", s)
}

// MaxEdges returns the number of graph edges in one instance of the
// pattern, excluding the (removed) target link itself.
func (p Pattern) MaxEdges() int {
	switch p {
	case Triangle:
		return 2
	case Rectangle:
		return 3
	case RecTri, Pentagon:
		return 4
	}
	panic("motif: invalid pattern")
}

// Instance is one target subgraph: the concrete edges that, together with
// the (already deleted) target link, form the motif. Deleting any one of
// these edges breaks the instance.
type Instance struct {
	Target int32 // index of the owning target in the caller's target list
	Edges  []graph.Edge
}

// Scratch holds the reusable buffers one enumeration worker needs: the
// merge-join intersection buffers and the instance-edge emission buffer.
// A zero Scratch is ready to use; after a few calls the buffers reach the
// high-water mark of the workload and enumeration stops allocating
// entirely. A Scratch must not be shared between goroutines.
type Scratch struct {
	cn    []graph.NodeID // outer intersection (e.g. Γ(u) ∩ Γ(v))
	cn2   []graph.NodeID // inner intersection (per outer element)
	edges [4]graph.Edge  // emission buffer passed to visit
}

// EnumerateTarget lists every instance of pattern completing target
// t = (u, v) in g. g must be the phase-1 graph: all target links already
// removed, so instances never contain a target link and W_t sets are
// disjoint across targets by construction.
//
// The visit callback receives the edges of each instance; the slice is
// reused between calls and must not be retained. Instances are visited in
// a deterministic order (ascending by the intermediate nodes).
//
// This convenience form allocates a fresh Scratch per call; hot loops use
// EnumerateTargetScratch with a per-worker Scratch instead.
func EnumerateTarget(g *graph.Graph, pattern Pattern, t graph.Edge, visit func(edges []graph.Edge)) {
	var sc Scratch
	EnumerateTargetScratch(g, pattern, t, &sc, visit)
}

// EnumerateTargetScratch is EnumerateTarget with caller-owned scratch
// buffers: in the steady state (warm scratch) enumeration performs no
// per-visit or per-pair allocations.
func EnumerateTargetScratch(g *graph.Graph, pattern Pattern, t graph.Edge, sc *Scratch, visit func(edges []graph.Edge)) {
	enumerate(g, pattern, t, sc, visit)
}

// enumerate is the single kernel behind both enumeration and counting: it
// walks every instance of pattern completing t via merge-joins over the
// graph's sorted neighbor rows, calls visit (when non-nil) per instance,
// and returns the instance count. Keeping one kernel guarantees Count and
// EnumerateTarget can never disagree.
//
//tpp:hotpath
func enumerate(g *graph.Graph, pattern Pattern, t graph.Edge, sc *Scratch, visit func(edges []graph.Edge)) int {
	u, v := t.U, t.V
	n := 0
	switch pattern {
	case Triangle:
		sc.cn = g.AppendCommonNeighbors(u, v, sc.cn[:0])
		for _, w := range sc.cn {
			n++
			if visit != nil {
				sc.edges[0] = graph.NewEdge(u, w)
				sc.edges[1] = graph.NewEdge(w, v)
				visit(sc.edges[:2])
			}
		}

	case Rectangle:
		// u–a–b–v: a ∈ Γ(u)\{v}, b ∈ Γ(a) ∩ Γ(v) \ {u} (b ≠ a, b ≠ v hold
		// automatically in a simple graph).
		for _, a := range g.NeighborsView(u) {
			if a == v {
				continue
			}
			sc.cn2 = g.AppendCommonNeighbors(a, v, sc.cn2[:0])
			for _, b := range sc.cn2 {
				if b == u {
					continue
				}
				n++
				if visit != nil {
					sc.edges[0] = graph.NewEdge(u, a)
					sc.edges[1] = graph.NewEdge(a, b)
					sc.edges[2] = graph.NewEdge(b, v)
					visit(sc.edges[:3])
				}
			}
		}

	case RecTri:
		sc.cn = g.AppendCommonNeighbors(u, v, sc.cn[:0])
		for _, w := range sc.cn {
			// orientation 1: triangle on the u side — 3-path u–x–w–v.
			sc.cn2 = g.AppendCommonNeighbors(u, w, sc.cn2[:0])
			for _, x := range sc.cn2 {
				if x == v {
					continue
				}
				n++
				if visit != nil {
					sc.edges[0] = graph.NewEdge(u, w)
					sc.edges[1] = graph.NewEdge(w, v)
					sc.edges[2] = graph.NewEdge(u, x)
					sc.edges[3] = graph.NewEdge(x, w)
					visit(sc.edges[:4])
				}
			}
			// orientation 2: triangle on the v side — 3-path u–w–x–v.
			sc.cn2 = g.AppendCommonNeighbors(w, v, sc.cn2[:0])
			for _, x := range sc.cn2 {
				if x == u {
					continue
				}
				n++
				if visit != nil {
					sc.edges[0] = graph.NewEdge(u, w)
					sc.edges[1] = graph.NewEdge(w, v)
					sc.edges[2] = graph.NewEdge(w, x)
					sc.edges[3] = graph.NewEdge(x, v)
					visit(sc.edges[:4])
				}
			}
		}

	case Pentagon:
		// u–a–b–c–v: c ∈ Γ(b) ∩ Γ(v) \ {u, a} (c ≠ b, c ≠ v automatic).
		for _, a := range g.NeighborsView(u) {
			if a == v {
				continue
			}
			for _, b := range g.NeighborsView(a) {
				if b == u || b == v {
					continue
				}
				sc.cn2 = g.AppendCommonNeighbors(b, v, sc.cn2[:0])
				for _, c := range sc.cn2 {
					if c == u || c == a {
						continue
					}
					n++
					if visit != nil {
						sc.edges[0] = graph.NewEdge(u, a)
						sc.edges[1] = graph.NewEdge(a, b)
						sc.edges[2] = graph.NewEdge(b, c)
						sc.edges[3] = graph.NewEdge(c, v)
						visit(sc.edges[:4])
					}
				}
			}
		}

	default:
		panic("motif: invalid pattern")
	}
	return n
}

// Count returns s(·, t): the number of instances of pattern completing
// target t in the current graph. This is the naive recount path; its cost
// for the motifs here is O(d_u · d_v)-ish, exactly the complexity the paper
// analyses. It allocates a fresh Scratch; hot loops use CountScratch.
func Count(g *graph.Graph, pattern Pattern, t graph.Edge) int {
	var sc Scratch
	return enumerate(g, pattern, t, &sc, nil)
}

// CountScratch is Count with caller-owned scratch buffers — allocation-free
// once the scratch is warm. This is what the recount greedy loops pay per
// candidate per step.
//
//tpp:hotpath
func CountScratch(g *graph.Graph, pattern Pattern, t graph.Edge, sc *Scratch) int {
	return enumerate(g, pattern, t, sc, nil)
}

// CountAll returns Σ_t s(·, t) over all targets plus the per-target counts.
func CountAll(g *graph.Graph, pattern Pattern, targets []graph.Edge) (total int, perTarget []int) {
	perTarget = make([]int, len(targets))
	var sc Scratch
	return CountAllScratch(g, pattern, targets, &sc, perTarget), perTarget
}

// CountAllScratch writes the per-target counts into perTarget (len must be
// len(targets)) and returns the total, reusing the caller's scratch —
// the allocation-free form of CountAll.
//
//tpp:hotpath
func CountAllScratch(g *graph.Graph, pattern Pattern, targets []graph.Edge, sc *Scratch, perTarget []int) (total int) {
	for i, t := range targets {
		c := enumerate(g, pattern, t, sc, nil)
		perTarget[i] = c
		total += c
	}
	return total
}

// CountTotalScratch returns Σ_t s(·, t) without materialising per-target
// counts — the cheapest recount form, used by the SGB gain scans.
//
//tpp:hotpath
func CountTotalScratch(g *graph.Graph, pattern Pattern, targets []graph.Edge, sc *Scratch) (total int) {
	for _, t := range targets {
		total += enumerate(g, pattern, t, sc, nil)
	}
	return total
}

// Instances materialises every instance for every target (phase-1 graph).
func Instances(g *graph.Graph, pattern Pattern, targets []graph.Edge) []Instance {
	var out []Instance
	var sc Scratch
	for i, t := range targets {
		EnumerateTargetScratch(g, pattern, t, &sc, func(edges []graph.Edge) {
			cp := make([]graph.Edge, len(edges))
			copy(cp, edges)
			out = append(out, Instance{Target: int32(i), Edges: cp})
		})
	}
	return out
}
