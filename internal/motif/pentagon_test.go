package motif

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPentagonCount(t *testing.T) {
	// target (0,1); 4-path 0-2-3-4-1 forms exactly one pentagon.
	g := graph.New(5)
	for _, e := range [][2]graph.NodeID{{0, 2}, {2, 3}, {3, 4}, {4, 1}} {
		g.AddEdge(e[0], e[1])
	}
	target := graph.NewEdge(0, 1)
	if got := Count(g, Pentagon, target); got != 1 {
		t.Fatalf("pentagon count = %d, want 1", got)
	}
	insts := Instances(g, Pentagon, []graph.Edge{target})
	if len(insts) != 1 || len(insts[0].Edges) != 4 {
		t.Fatalf("pentagon instance wrong: %+v", insts)
	}
}

func TestPentagonNeedsFiveDistinctNodes(t *testing.T) {
	// A 4-cycle 0-2-3-1 + chord cannot be a pentagon for (0,1): any 4-path
	// would revisit a node.
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 2}, {2, 3}, {3, 1}} {
		g.AddEdge(e[0], e[1])
	}
	if got := Count(g, Pentagon, graph.NewEdge(0, 1)); got != 0 {
		t.Fatalf("degenerate pentagon count = %d, want 0", got)
	}
	// Walks through u or v themselves are excluded too.
	g2 := graph.New(5)
	for _, e := range [][2]graph.NodeID{{0, 2}, {2, 1}, {1, 3}, {3, 4}, {4, 1}} {
		g2.AddEdge(e[0], e[1])
	}
	if got := Count(g2, Pentagon, graph.NewEdge(0, 1)); got != 0 {
		t.Fatalf("pentagon through endpoint = %d, want 0", got)
	}
}

func TestPentagonOnCycleGraph(t *testing.T) {
	// C5 with one edge designated the target: the remaining 4-path is the
	// single completing pentagon.
	g := gen.Cycle(5)
	target := graph.NewEdge(0, 4)
	g.RemoveEdgeE(target) // phase-1 form
	if got := Count(g, Pentagon, target); got != 1 {
		t.Fatalf("C5 pentagon count = %d, want 1", got)
	}
}

func TestPentagonParsingAndArity(t *testing.T) {
	p, err := ParsePattern("Pentagon")
	if err != nil || p != Pentagon {
		t.Fatalf("ParsePattern(Pentagon) = %v, %v", p, err)
	}
	if Pentagon.MaxEdges() != 4 || Pentagon.String() != "Pentagon" {
		t.Fatal("pentagon metadata wrong")
	}
	if len(AllPatterns) != 4 {
		t.Fatalf("AllPatterns = %v", AllPatterns)
	}
}

// The index machinery must be pattern-agnostic: Pentagon gains match
// recount deltas just like the paper motifs.
func TestPropertyPentagonIndexMatchesRecount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbertTriad(22, 3, 0.5, rng)
		edges := g.Edges()
		target := edges[rng.Intn(len(edges))]
		work := g.Clone()
		work.RemoveEdgeE(target)
		ix, err := NewIndex(work, Pentagon, []graph.Edge{target})
		if err != nil {
			return false
		}
		before := ix.TotalSimilarity()
		for _, p := range ix.CandidateEdges() {
			work.RemoveEdgeE(p)
			after, _ := CountAll(work, Pentagon, []graph.Edge{target})
			work.AddEdgeE(p)
			if ix.Gain(p) != before-after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
