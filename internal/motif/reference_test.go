package motif

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
)

// This file pins the merge-join enumeration kernels to a map-reference
// implementation: refAdj is the hash-set adjacency the library used before
// the sorted-slice graph core, and refEnumerate spells each motif out as
// nested set loops with no shared code with the production kernel. Every
// pattern's instance multiset must agree between the two on random graphs.

type refAdj []map[graph.NodeID]struct{}

func refFrom(g *graph.Graph) refAdj {
	adj := make(refAdj, g.NumNodes())
	for i := range adj {
		adj[i] = make(map[graph.NodeID]struct{})
	}
	g.EachEdge(func(e graph.Edge) bool {
		adj[e.U][e.V] = struct{}{}
		adj[e.V][e.U] = struct{}{}
		return true
	})
	return adj
}

func (a refAdj) has(u, v graph.NodeID) bool {
	_, ok := a[u][v]
	return ok
}

// refEnumerate lists every instance of pattern completing (u, v) straight
// from the set definitions in the paper's Fig. 1.
func refEnumerate(a refAdj, pattern Pattern, t graph.Edge) [][]graph.Edge {
	u, v := t.U, t.V
	var out [][]graph.Edge
	emit := func(es ...graph.Edge) { out = append(out, es) }
	switch pattern {
	case Triangle:
		for w := range a[u] {
			if w != v && a.has(w, v) {
				emit(graph.NewEdge(u, w), graph.NewEdge(w, v))
			}
		}
	case Rectangle:
		for x := range a[u] {
			if x == v {
				continue
			}
			for y := range a[x] {
				if y == u || y == v || !a.has(y, v) {
					continue
				}
				emit(graph.NewEdge(u, x), graph.NewEdge(x, y), graph.NewEdge(y, v))
			}
		}
	case RecTri:
		for w := range a[u] {
			if w == v || !a.has(w, v) {
				continue
			}
			for x := range a[u] {
				if x != v && x != w && a.has(x, w) {
					emit(graph.NewEdge(u, w), graph.NewEdge(w, v), graph.NewEdge(u, x), graph.NewEdge(x, w))
				}
			}
			for x := range a[v] {
				if x != u && x != w && a.has(x, w) {
					emit(graph.NewEdge(u, w), graph.NewEdge(w, v), graph.NewEdge(w, x), graph.NewEdge(x, v))
				}
			}
		}
	case Pentagon:
		for x := range a[u] {
			if x == v {
				continue
			}
			for y := range a[x] {
				if y == u || y == v {
					continue
				}
				for z := range a[y] {
					if z == u || z == v || z == x || !a.has(z, v) {
						continue
					}
					emit(graph.NewEdge(u, x), graph.NewEdge(x, y), graph.NewEdge(y, z), graph.NewEdge(z, v))
				}
			}
		}
	default:
		panic("unknown pattern")
	}
	return out
}

// canonInstances renders an instance list as a sorted multiset of
// edge-list strings, so order-insensitive comparison is a DeepEqual.
func canonInstances(insts [][]graph.Edge) []string {
	out := make([]string, len(insts))
	for i, es := range insts {
		cp := append([]graph.Edge(nil), es...)
		graph.SortEdges(cp)
		out[i] = fmt.Sprint(cp)
	}
	sort.Strings(out)
	return out
}

// TestEnumerationSteadyStateZeroAlloc is the regression guard for the
// scratch-reuse refactor: once a worker's Scratch is warm, counting and
// enumerating motif instances must not allocate at all — the recount greedy
// loops pay these kernels per candidate per step.
func TestEnumerationSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	g := graph.New(n)
	for g.NumEdges() < 5*n {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	targets := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3), graph.NewEdge(4, 5)}
	for _, tgt := range targets {
		g.RemoveEdgeE(tgt)
	}
	sink := 0
	visit := func(edges []graph.Edge) { sink += len(edges) }
	for _, pattern := range AllPatterns {
		var sc Scratch
		// Warm the scratch to its high-water mark.
		CountTotalScratch(g, pattern, targets, &sc)
		if allocs := testing.AllocsPerRun(20, func() {
			sink += CountTotalScratch(g, pattern, targets, &sc)
		}); allocs != 0 {
			t.Errorf("%v: CountTotalScratch allocates %v objects/run in steady state", pattern, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			for _, tgt := range targets {
				EnumerateTargetScratch(g, pattern, tgt, &sc, visit)
			}
		}); allocs != 0 {
			t.Errorf("%v: EnumerateTargetScratch allocates %v objects/run in steady state", pattern, allocs)
		}
	}
	_ = sink
}

func TestEnumerateMatchesMapReference(t *testing.T) {
	for _, pattern := range AllPatterns {
		pattern := pattern
		t.Run(pattern.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 28
				g := graph.New(n)
				for g.NumEdges() < 3*n {
					u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
					if u != v {
						g.AddEdge(u, v)
					}
				}
				ref := refFrom(g)
				var sc Scratch
				for trial := 0; trial < 12; trial++ {
					u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
					if u == v {
						continue
					}
					tgt := graph.NewEdge(u, v)
					// The production kernels require the phase-1 invariant
					// (target link absent); drop it from both sides.
					removed := g.RemoveEdgeE(tgt)
					if removed {
						delete(ref[tgt.U], tgt.V)
						delete(ref[tgt.V], tgt.U)
					}
					var got [][]graph.Edge
					EnumerateTargetScratch(g, pattern, tgt, &sc, func(edges []graph.Edge) {
						got = append(got, append([]graph.Edge(nil), edges...))
					})
					want := refEnumerate(ref, pattern, tgt)
					gi, wi := canonInstances(got), canonInstances(want)
					if !reflect.DeepEqual(gi, wi) {
						t.Fatalf("seed %d target %v: kernel found %d instances, reference %d:\n got %v\nwant %v",
							seed, tgt, len(gi), len(wi), gi, wi)
					}
					if c := CountScratch(g, pattern, tgt, &sc); c != len(want) {
						t.Fatalf("seed %d target %v: Count = %d, reference %d", seed, tgt, c, len(want))
					}
					if removed {
						g.AddEdgeE(tgt)
						ref[tgt.U][tgt.V] = struct{}{}
						ref[tgt.V][tgt.U] = struct{}{}
					}
				}
			}
		})
	}
}
