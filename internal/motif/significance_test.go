package motif

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestGlobalCountTriangleOnClique(t *testing.T) {
	// K4 has 4 triangles; each triangle is counted once per closing edge
	// (3 edges) → GlobalCount = 12. Equivalently: each of the 6 edges has
	// 2 common-neighbour completions.
	if got := GlobalCount(gen.Complete(4), Triangle); got != 12 {
		t.Fatalf("GlobalCount(K4, Triangle) = %d, want 12", got)
	}
	// Trees are triangle-free.
	if got := GlobalCount(gen.Path(10), Triangle); got != 0 {
		t.Fatalf("GlobalCount(path, Triangle) = %d, want 0", got)
	}
}

func TestGlobalCountDoesNotMutate(t *testing.T) {
	g := gen.Complete(5)
	m := g.NumEdges()
	GlobalCount(g, RecTri)
	if g.NumEdges() != m {
		t.Fatal("GlobalCount mutated the graph")
	}
}

func TestGlobalCountRectangleOnCycle(t *testing.T) {
	// C4: every edge closes exactly one 3-path → GlobalCount = 4.
	if got := GlobalCount(gen.Cycle(4), Rectangle); got != 4 {
		t.Fatalf("GlobalCount(C4, Rectangle) = %d, want 4", got)
	}
}

func TestProfileTriadGraphOverrepresentsTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Holme–Kim graphs are built by triadic closure: triangles must be
	// significantly over-represented versus the degree-preserving null.
	g := gen.BarabasiAlbertTriad(150, 3, 0.8, rng)
	profile := Profile(g, []Pattern{Triangle}, 5, rng)
	if len(profile) != 1 {
		t.Fatalf("profile size = %d", len(profile))
	}
	s := profile[0]
	if s.Observed == 0 {
		t.Fatal("no triangles in a triad-formation graph?")
	}
	if s.ZScore < 2 {
		t.Fatalf("triangle z-score = %v, expected strong over-representation (obs=%d null=%.1f±%.1f)",
			s.ZScore, s.Observed, s.NullMean, s.NullStd)
	}
}

func TestMostSignificantPicksTriangleOnClusteredGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.BarabasiAlbertTriad(120, 3, 0.8, rng)
	best := MostSignificant(g, []Pattern{Triangle, Rectangle}, 4, rng)
	if best != Triangle {
		t.Fatalf("recommended motif = %v, want Triangle on a triadic-closure graph", best)
	}
}

func TestSwitchRandomizePreservesDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbertTriad(80, 3, 0.5, rng)
	null := switchRandomize(g, 4*g.NumEdges(), rng)
	gd, nd := g.Degrees(), null.Degrees()
	for v := range gd {
		if gd[v] != nd[v] {
			t.Fatalf("degree of %d changed: %d -> %d", v, gd[v], nd[v])
		}
	}
	// And it actually randomized something.
	changed := 0
	null.EachEdge(func(e graph.Edge) bool {
		if !g.HasEdgeE(e) {
			changed++
		}
		return true
	})
	if changed == 0 {
		t.Fatal("null model identical to input")
	}
}

func TestProfileMinimumSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.Cycle(8)
	// samples < 2 is clamped, not an error.
	profile := Profile(g, []Pattern{Rectangle}, 1, rng)
	if len(profile) != 1 {
		t.Fatal("profile missing")
	}
}
