package motif

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/graph"
)

// ApplyStats describes one incremental delta application (ApplyDelta), for
// observability: how much of the index the delta actually touched, versus
// the full re-enumeration it avoided.
type ApplyStats struct {
	// Inserted and Removed count the delta edges applied.
	Inserted, Removed int
	// TouchedTargets counts the targets re-enumerated because an inserted
	// edge could complete one of their instances. Every other target kept
	// its instance list verbatim (minus removal kills).
	TouchedTargets int
	// KilledInstances counts instances of untouched targets destroyed by
	// edge removals, found via the CSR edge→instance table.
	KilledInstances int
	// Instances is the live instance count after the apply, i.e. the new
	// s(∅, T).
	Instances int
	// Elapsed is the wall-clock cost of the apply.
	Elapsed time.Duration
}

// ApplyDelta incrementally rewires the index for a batch of edge mutations.
// The subgraph enumeration — the dominant cost of a fresh build — shrinks
// to the delta's reach: only insert-touched targets re-enumerate, and a
// delta with no insertions enumerates nothing at all (see applyRemovals).
// The flat arrays (interner, CSR table, gains, heap) are then rewired
// wholesale in O(universe + instances), the same cheap cost class as
// Reset. g must be the phase-1 graph with the delta already applied
// (removed edges gone, inserted edges present, targets still absent).
//
// Removals can only destroy instances; the CSR edge→instance table names
// exactly the instances each removed edge participated in, so they are
// killed without touching the graph. Insertions can only create instances,
// and a new instance must use at least one inserted edge, so only targets
// for which some inserted edge can sit inside an instance (a local, O(1)
// adjacency test per target × inserted edge — see insertTouches) are
// re-enumerated with the same kernels NewIndex uses; all other targets
// provably keep their instance sets. The flat state is then rebuilt from
// the stitched per-target buffers by the same builder NewIndex uses, so the
// resulting index — similarities, gains, candidate universe, heap order and
// therefore every selection made from it — is bit-identical to a fresh
// NewIndex on the mutated graph.
//
// Any protector deletions recorded on the index (DeleteEdgeID since the
// last Reset) are discarded, exactly as a fresh build would: an applied
// index starts fully alive.
func (ix *Index) ApplyDelta(g *graph.Graph, inserted, removed []graph.Edge) (ApplyStats, error) {
	start := time.Now()
	for _, t := range ix.targets {
		if g.HasEdgeE(t) {
			return ApplyStats{}, fmt.Errorf("motif: target %v present in mutated graph; deltas must not insert target links", t)
		}
	}
	for _, e := range inserted {
		if !g.HasEdgeE(e) {
			return ApplyStats{}, fmt.Errorf("motif: inserted edge %v absent from mutated graph; apply the delta to the graph before the index", e)
		}
	}
	for _, e := range removed {
		if g.HasEdgeE(e) {
			return ApplyStats{}, fmt.Errorf("motif: removed edge %v still present in mutated graph; apply the delta to the graph before the index", e)
		}
	}

	// Pure-removal fast path: with no insertions no target can gain an
	// instance, so enumeration is skipped entirely — removal-incident
	// instances are killed through the CSR table and the flat state is
	// compacted in place, linear in the universe and instance table with no
	// sorting and no edge interning.
	if len(inserted) == 0 {
		killed := ix.applyRemovals(removed)
		return ApplyStats{
			Removed:         len(removed),
			KilledInstances: killed,
			Instances:       len(ix.inst),
			Elapsed:         time.Since(start),
		}, nil
	}

	// Adjacency in the union graph (old ∪ new edge sets): g already reflects
	// the delta, so union adjacency is g plus the removed edges. The touched
	// test runs in the union so it soundly covers instances of both the old
	// and the new graph.
	removedSet := make(map[graph.Edge]struct{}, len(removed))
	for _, e := range removed {
		if !e.Canonical() {
			e = graph.Edge{U: e.V, V: e.U}
		}
		removedSet[e] = struct{}{}
	}
	hasUnion := func(x, y graph.NodeID) bool {
		if x == y {
			return false
		}
		if g.HasEdge(x, y) {
			return true
		}
		_, ok := removedSet[graph.NewEdge(x, y)]
		return ok
	}

	touched := make([]bool, len(ix.targets))
	nTouched := 0
	for ti, t := range ix.targets {
		for _, e := range inserted {
			if insertTouches(ix.pattern, t, e, hasUnion) {
				touched[ti] = true
				nTouched++
				break
			}
		}
	}

	// Kill pass: an instance dies iff it contains a removed edge. The CSR
	// rows of the removed ids name exactly those instances; removed edges
	// outside the interned universe participated in none. Instances of
	// touched targets are skipped — their whole list is replaced below.
	killed := make([]bool, len(ix.inst))
	nKilled := 0
	for _, e := range removed {
		id := ix.in.ID(e)
		if id == graph.NoEdge {
			continue
		}
		for _, instID := range ix.instIDs[ix.instStart[id]:ix.instStart[id+1]] {
			if !killed[instID] && !touched[ix.inst[instID].target] {
				killed[instID] = true
				nKilled++
			}
		}
	}

	// Stitch the per-target buffers: survivors keep their edges verbatim
	// (protector-deletion dead flags are ignored — a rebuild revives them,
	// exactly like a fresh build); touched targets are re-enumerated on the
	// mutated graph with the same kernels NewIndex uses.
	byTarget := make([][]rawInstance, len(ix.targets))
	for i := range ix.inst {
		in0 := &ix.inst[i]
		if touched[in0.target] || killed[i] {
			continue
		}
		var r rawInstance
		r.ne = in0.ne
		for j, id := range in0.edges[:in0.ne] {
			r.edges[j] = ix.in.Edge(id)
		}
		byTarget[in0.target] = append(byTarget[in0.target], r)
	}
	// Touched targets re-enumerate through the same worker-sharded kernel
	// the full build uses, so a broad delta (hub insertions flagging many
	// targets) is never slower than its share of a parallel rebuild.
	if nTouched > 0 {
		touchedIdx := make([]int, 0, nTouched)
		for ti := range ix.targets {
			if touched[ti] {
				touchedIdx = append(touchedIdx, ti)
			}
		}
		enumerateInto(g, ix.pattern, ix.targets, touchedIdx, runtime.GOMAXPROCS(0), byTarget)
	}

	ix.build(byTarget)
	return ApplyStats{
		Inserted:        len(inserted),
		Removed:         len(removed),
		TouchedTargets:  nTouched,
		KilledInstances: nKilled,
		Instances:       len(ix.inst),
		Elapsed:         time.Since(start),
	}, nil
}

// CanCreateInstances reports whether inserting the edge e — already present
// in g — could have created any instance of pattern for target t. It is the
// same conservative-but-sound structural test ApplyDelta uses to restrict
// re-enumeration (see insertTouches): a false answer proves t's instance
// set cannot contain e, so callers maintaining an invariant over a stream
// of insertions (tpp.Guard) can skip targets — usually all of them —
// without enumerating anything.
func CanCreateInstances(g *graph.Graph, pattern Pattern, t, e graph.Edge) bool {
	return insertTouches(pattern, t, e, func(x, y graph.NodeID) bool { return g.HasEdge(x, y) })
}

// applyRemovals is the removal-only maintenance kernel behind ApplyDelta's
// fast path. It kills every instance containing a removed edge (named
// exactly by the CSR rows of the removed ids), then rewrites the index to
// the state a fresh build on the shrunken graph would produce: edges left
// with no incidence drop out of the interned universe, surviving instances
// keep their relative order, recorded protector deletions are discarded
// (an applied index starts fully alive), and the flat state is rewired.
//
// Because the old universe already ascends in canonical edge order, the
// surviving universe is a monotone filter of it: the rebuild is linear
// passes over the instance table and universe — no packed-edge sort, no
// per-instance ID() lookups, and crucially no target re-enumeration. It
// returns the number of instances killed.
func (ix *Index) applyRemovals(removed []graph.Edge) int {
	kill := make([]bool, len(ix.inst))
	nKilled := 0
	for _, e := range removed {
		id := ix.in.ID(e)
		if id == graph.NoEdge {
			continue // outside the universe: participated in no instance
		}
		for _, instID := range ix.instIDs[ix.instStart[id]:ix.instStart[id+1]] {
			if !kill[instID] {
				kill[instID] = true
				nKilled++
			}
		}
	}
	if nKilled == 0 {
		// Nothing interned was removed; the rebuilt state is exactly the
		// build-time state with protector deletions discarded.
		ix.Reset()
		return 0
	}

	// Surviving per-edge incidence counts over the fully-alive state.
	oldNE := ix.in.NumEdges()
	oldGain := make([]int32, oldNE)
	for i := range ix.inst {
		if kill[i] {
			continue
		}
		in := &ix.inst[i]
		for _, id := range in.edges[:in.ne] {
			oldGain[id]++
		}
	}

	// Compact the universe, preserving canonical order.
	remap := make([]graph.EdgeID, oldNE)
	packed := make([]uint64, 0, oldNE)
	for id := 0; id < oldNE; id++ {
		if oldGain[id] > 0 {
			remap[id] = graph.EdgeID(len(packed))
			packed = append(packed, graph.PackEdge(ix.in.Edge(graph.EdgeID(id))))
		} else {
			remap[id] = graph.NoEdge
		}
	}
	ne := len(packed)
	gain := make([]int32, ne)
	for id, nw := range remap {
		if nw != graph.NoEdge {
			gain[nw] = oldGain[id]
		}
	}
	ix.in = graph.NewInternerFromPacked(packed)
	ix.gain = gain

	// Compact the instance table in place, resolving edges to the new ids
	// and reviving any protector-dead survivors.
	out := ix.inst[:0]
	for i := range ix.inst {
		if kill[i] {
			continue
		}
		in := ix.inst[i]
		in.dead = false
		for j := range in.edges[:in.ne] {
			in.edges[j] = remap[in.edges[j]]
		}
		out = append(out, in)
	}
	ix.inst = out

	for ti := range ix.perTarget {
		ix.perTarget[ti] = 0
	}
	for i := range ix.inst {
		ix.perTarget[ix.inst[i].target]++
	}
	ix.alive = len(ix.inst)

	ix.wireFlat()
	return nKilled
}

// insertTouches reports whether inserting the edge e could create an
// instance of pattern for target t, judged in the union graph via hasUnion.
// The test is conservative (it may flag a target that gains nothing) but
// sound: every edge of every instance of t — in the old or the new graph —
// satisfies a structural condition this test covers, so a target it clears
// provably has an unchanged instance set under insertions.
//
// The per-pattern conditions follow from where an instance edge can sit
// relative to the target (u, v):
//
//   - Triangle u–w–v: both edges are incident to u or v.
//   - Rectangle u–a–b–v: end edges are incident to u or v; the middle edge
//     (a, b) has its endpoints split across N(u) and N(v).
//   - RecTri: the 2-path edges are incident to u or v; the triangle edges
//     (u, x) and (x, w) are incident to u or to a common neighbor w of u
//     and v.
//   - Pentagon u–a–b–c–v: every edge has at least one endpoint within
//     distance 1 of u or v.
func insertTouches(pattern Pattern, t, e graph.Edge, hasUnion func(x, y graph.NodeID) bool) bool {
	if e.Has(t.U) || e.Has(t.V) {
		return true
	}
	u, v := t.U, t.V
	x, y := e.U, e.V
	switch pattern {
	case Triangle:
		return false // non-incident edges never sit in a triangle instance
	case Rectangle:
		return (hasUnion(x, u) && hasUnion(y, v)) || (hasUnion(y, u) && hasUnion(x, v))
	case RecTri:
		return (hasUnion(x, u) && hasUnion(x, v)) || (hasUnion(y, u) && hasUnion(y, v))
	case Pentagon:
		return hasUnion(x, u) || hasUnion(x, v) || hasUnion(y, u) || hasUnion(y, v)
	}
	panic("motif: invalid pattern")
}
