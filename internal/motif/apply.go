package motif

import (
	"fmt"
	"runtime"
	"slices"
	"time"

	"repro/internal/graph"
)

// targetIndex returns the position of t in the index's target list,
// comparing canonically, or -1.
func (ix *Index) targetIndex(t graph.Edge) int {
	t = canonEdge(t)
	for i, cur := range ix.targets {
		if canonEdge(cur) == t {
			return i
		}
	}
	return -1
}

// ApplyStats describes one incremental mutation application (ApplyMutation
// / ApplyDelta), for observability: how much of the index the mutation
// actually touched, versus the full re-enumeration it avoided.
type ApplyStats struct {
	// Inserted and Removed count the delta edges applied.
	Inserted, Removed int
	// TargetsAdded and TargetsDropped count the target-list edits applied.
	TargetsAdded, TargetsDropped int
	// TouchedTargets counts the surviving targets re-enumerated because an
	// inserted edge could complete one of their instances. Every other
	// surviving target kept its instance list verbatim (minus removal
	// kills); added targets are enumerated once and counted separately by
	// TargetsAdded.
	TouchedTargets int
	// KilledInstances counts instances of untouched surviving targets
	// destroyed by edge removals, found via the CSR edge→instance table.
	KilledInstances int
	// DroppedInstances counts instances discarded wholesale because their
	// target was dropped.
	DroppedInstances int
	// Instances is the live instance count after the apply, i.e. the new
	// s(∅, T).
	Instances int
	// TouchedEdges is the conservative set of edges whose fully-alive gain
	// the mutation may have changed, in canonical order and post-remap
	// spelling: the edges of every killed, dropped or re-enumerated old
	// instance plus the edges of every freshly enumerated one. An edge
	// outside this set provably keeps its instance set verbatim (modulo the
	// node renaming applied to both sides), which is what lets a warm-started
	// selection re-verify only these edges instead of the whole universe.
	// Edges that left the graph with a removed endpoint are omitted: they are
	// no longer candidates and their gain is zero by construction.
	TouchedEdges []graph.Edge
	// Elapsed is the wall-clock cost of the apply.
	Elapsed time.Duration
}

// Mutation is the index-level view of one applied session delta. All edges
// are named in PRE-remap node IDs — the IDs the index's current state and
// the delta itself use; Remap describes how the graph's node universe was
// renamed underneath (dynamic.Delta.ApplyToGraph returns exactly this).
type Mutation struct {
	// Inserted and Removed are the delta's ordinary-edge mutations. The
	// graph passed to ApplyMutation must already reflect them.
	Inserted, Removed []graph.Edge
	// AddTargets are appended to the target list in the given order;
	// DropTargets name current targets to retire. Neither list's links may
	// be present in the (phase-1) graph.
	AddTargets, DropTargets []graph.Edge
	// Remap renames the node universe: remap[old] = new ID, graph.NoNode
	// for removed nodes; nil means the universe is unchanged (node
	// additions alone never rename — fresh IDs append past the old range).
	Remap []graph.NodeID
}

// rename returns e spelled in post-remap node IDs (re-canonicalized: a
// renaming can flip the endpoint order). Only edges whose endpoints survive
// may be renamed.
func (m *Mutation) rename(e graph.Edge) graph.Edge {
	if m.Remap == nil {
		return e
	}
	return graph.NewEdge(m.Remap[e.U], m.Remap[e.V])
}

// ApplyDelta incrementally rewires the index for a batch of edge-only
// mutations: ApplyMutation with a fixed target list and an unchanged node
// universe. See ApplyMutation for the full contract.
func (ix *Index) ApplyDelta(g *graph.Graph, inserted, removed []graph.Edge) (ApplyStats, error) {
	return ix.ApplyMutation(g, Mutation{Inserted: inserted, Removed: removed})
}

// ApplyMutation incrementally rewires the index for one applied session
// mutation: edge insertions and removals, target-list edits, and a node
// renaming (see Mutation). The subgraph enumeration — the dominant cost of
// a fresh build — shrinks to the mutation's reach: only insert-touched
// surviving targets and added targets enumerate, and a mutation with
// neither enumerates nothing at all. The flat arrays (interner, CSR table,
// gains, heap) are then rewired wholesale in O(universe + instances), the
// same cheap cost class as Reset. g must be the phase-1 graph with the
// mutation already applied (removed edges and nodes gone, inserted edges
// present, nodes renamed, no target link — old, surviving or added —
// present).
//
// Removals can only destroy instances; the CSR edge→instance table names
// exactly the instances each removed edge participated in, so they are
// killed without touching the graph. A dropped target's instances are
// discarded wholesale with it. Insertions can only create instances, and a
// new instance must use at least one inserted edge, so only surviving
// targets for which some inserted edge can sit inside an instance (a
// local, O(1) adjacency test per target × inserted edge — see
// insertTouches) are re-enumerated with the same kernels NewIndex uses; an
// added target is enumerated exactly once; all other targets provably keep
// their instance sets. A node renaming re-spells the surviving instances'
// edges (their endpoints necessarily survive) without enumerating
// anything. The flat state is then rebuilt from the stitched per-target
// buffers by the same builder NewIndex uses, so the resulting index —
// similarities, gains, candidate universe, heap order and therefore every
// selection made from it — is bit-identical to a fresh NewIndex on the
// mutated graph and mutated target list.
//
// Any protector deletions recorded on the index (DeleteEdgeID since the
// last Reset) are discarded, exactly as a fresh build would: an applied
// index starts fully alive. Targets() reflects the new list afterwards:
// survivors keep their relative order, added targets append in the order
// given.
func (ix *Index) ApplyMutation(g *graph.Graph, m Mutation) (ApplyStats, error) {
	start := time.Now()

	// Resolve the target-list edit first: drop flags on the old list, the
	// old→new target index map, and the new list in post-remap names.
	drop := scratchSlice(ix.sc.drop, len(ix.targets))
	ix.sc.drop = drop
	clear(drop)
	for _, t := range m.DropTargets {
		ti := ix.targetIndex(t)
		if ti < 0 {
			return ApplyStats{}, fmt.Errorf("motif: dropped target %v is not a target of this index", t)
		}
		if drop[ti] {
			return ApplyStats{}, fmt.Errorf("motif: target %v dropped twice", t)
		}
		drop[ti] = true
	}
	newIdx := scratchSlice(ix.sc.newIdx, len(ix.targets))
	ix.sc.newIdx = newIdx
	newTargets := make([]graph.Edge, 0, len(ix.targets)-len(m.DropTargets)+len(m.AddTargets))
	for ti, t := range ix.targets {
		if drop[ti] {
			newIdx[ti] = -1
			continue
		}
		newIdx[ti] = len(newTargets)
		newTargets = append(newTargets, m.rename(t))
	}
	addedFrom := len(newTargets)
	for _, t := range m.AddTargets {
		newTargets = append(newTargets, m.rename(canonEdge(t)))
	}

	// Sanity checks mirroring NewIndex's, kept delta-sized so the apply
	// path never pays per-target costs: an added target must be absent
	// from g, and no inserted edge may spell a target link (a surviving
	// target was absent before the mutation, and with target insertions
	// excluded it provably still is — renaming preserves absence).
	for _, t := range newTargets[addedFrom:] {
		if g.HasEdgeE(t) {
			return ApplyStats{}, fmt.Errorf("motif: target %v present in mutated graph; mutations must not insert target links", t)
		}
	}
	insertedNew := scratchSlice(ix.sc.insertedNew, len(m.Inserted))
	ix.sc.insertedNew = insertedNew
	for i, e := range m.Inserted {
		insertedNew[i] = m.rename(canonEdge(e))
		if !g.HasEdgeE(insertedNew[i]) {
			return ApplyStats{}, fmt.Errorf("motif: inserted edge %v absent from mutated graph; apply the delta to the graph before the index", e)
		}
		for _, t := range newTargets {
			if t == insertedNew[i] {
				return ApplyStats{}, fmt.Errorf("motif: inserted edge %v is a target link; mutations must not insert target links", e)
			}
		}
	}
	for _, e := range m.Removed {
		e = canonEdge(e)
		if m.Remap != nil && (m.Remap[e.U] == graph.NoNode || m.Remap[e.V] == graph.NoNode) {
			continue // an endpoint left the graph; the edge is certainly gone
		}
		if g.HasEdgeE(m.rename(e)) {
			return ApplyStats{}, fmt.Errorf("motif: removed edge %v still present in mutated graph; apply the delta to the graph before the index", e)
		}
	}

	// Pure edge-removal fast path: nothing can gain an instance and nothing
	// is renamed, so enumeration, sorting and interning are all skipped —
	// removal-incident instances are killed through the CSR table and the
	// flat state is compacted in place, linear in the universe and instance
	// table.
	if len(m.Inserted) == 0 && len(m.AddTargets) == 0 && len(m.DropTargets) == 0 && m.Remap == nil {
		killed, touched := ix.applyRemovals(m.Removed)
		return ApplyStats{
			Removed:         len(m.Removed),
			KilledInstances: killed,
			Instances:       len(ix.inst),
			TouchedEdges:    touched,
			Elapsed:         time.Since(start),
		}, nil
	}

	// Adjacency in the union graph (old ∪ new edge sets), post-remap names:
	// g already reflects the mutation, so union adjacency is g plus the
	// removed edges whose endpoints survived (an edge with a removed
	// endpoint cannot answer a query about surviving nodes). The touched
	// test runs in the union so it soundly covers instances of both the old
	// and the new graph.
	removedSet := make(map[graph.Edge]struct{}, len(m.Removed))
	for _, e := range m.Removed {
		e = canonEdge(e)
		if m.Remap != nil && (m.Remap[e.U] == graph.NoNode || m.Remap[e.V] == graph.NoNode) {
			continue
		}
		removedSet[m.rename(e)] = struct{}{}
	}
	hasUnion := func(x, y graph.NodeID) bool {
		if x == y {
			return false
		}
		if g.HasEdge(x, y) {
			return true
		}
		_, ok := removedSet[graph.NewEdge(x, y)]
		return ok
	}

	// enum[nt] marks new-list targets to (re-)enumerate: surviving targets
	// an inserted edge touches, plus every added target.
	enum := scratchSlice(ix.sc.enum, len(newTargets))
	ix.sc.enum = enum
	clear(enum)
	nTouched := 0
	for nt, t := range newTargets[:addedFrom] {
		for _, e := range insertedNew {
			if insertTouches(ix.pattern, t, e, hasUnion) {
				enum[nt] = true
				nTouched++
				break
			}
		}
	}
	for nt := addedFrom; nt < len(newTargets); nt++ {
		enum[nt] = true
	}

	// Kill pass: an instance of a surviving, un-enumerated target dies iff
	// it contains a removed edge. The CSR rows of the removed ids (old
	// names — the universe predates the remap) name exactly those
	// instances; removed edges outside the interned universe participated
	// in none. Instances of dropped and enumerated targets are skipped —
	// dropped wholesale, or replaced below.
	killed := scratchSlice(ix.sc.killed, len(ix.inst))
	ix.sc.killed = killed
	clear(killed)
	nKilled := 0
	for _, e := range m.Removed {
		id := ix.in.ID(e)
		if id == graph.NoEdge {
			continue
		}
		for _, instID := range ix.instIDs[ix.instStart[id]:ix.instStart[id+1]] {
			if killed[instID] {
				continue
			}
			if nt := newIdx[ix.inst[instID].target]; nt >= 0 && !enum[nt] {
				killed[instID] = true
				nKilled++
			}
		}
	}
	nDropped := 0
	for i := range ix.inst {
		if newIdx[ix.inst[i].target] < 0 {
			nDropped++
		}
	}

	// Enumerated targets go through the same worker-sharded kernel the full
	// build uses, so a broad mutation (hub insertions flagging many
	// targets) is never slower than its share of a parallel rebuild.
	byTarget := scratchSlice(ix.sc.byTarget, len(newTargets))
	ix.sc.byTarget = byTarget
	clear(byTarget)
	if nTouched > 0 || addedFrom < len(newTargets) {
		enumIdx := make([]int, 0, nTouched+len(newTargets)-addedFrom)
		for nt := range newTargets {
			if enum[nt] {
				enumIdx = append(enumIdx, nt)
			}
		}
		enumerateInto(g, ix.pattern, newTargets, enumIdx, runtime.GOMAXPROCS(0), byTarget)
	}

	// Touched-edge collection must read the old instance table, so it runs
	// before wireIncremental compacts it in place.
	touched := ix.collectTouched(newIdx, enum, killed, &m, byTarget)

	ix.wireIncremental(newTargets, newIdx, enum, killed, &m, byTarget)
	return ApplyStats{
		Inserted:         len(m.Inserted),
		Removed:          len(m.Removed),
		TargetsAdded:     len(m.AddTargets),
		TargetsDropped:   len(m.DropTargets),
		TouchedTargets:   nTouched,
		KilledInstances:  nKilled,
		DroppedInstances: nDropped,
		Instances:        len(ix.inst),
		TouchedEdges:     touched,
		Elapsed:          time.Since(start),
	}, nil
}

// collectTouched gathers ApplyStats.TouchedEdges for the full apply path:
// the edges of every old instance that does not survive verbatim (killed by
// a removal, dropped with its target, or replaced by a re-enumeration) plus
// the edges of every freshly enumerated instance. Edges losing an endpoint
// to the remap are skipped — they leave the universe and have zero gain
// forever. The result is deduplicated in canonical order via the packed
// encoding; only the handed-out slice is freshly allocated.
func (ix *Index) collectTouched(newIdx []int, enum, killed []bool, m *Mutation, byTarget [][]rawInstance) []graph.Edge {
	buf := ix.sc.touched[:0]
	for i := range ix.inst {
		in0 := &ix.inst[i]
		if nt := newIdx[in0.target]; nt >= 0 && !enum[nt] && !killed[i] {
			continue // survives verbatim: contributes the same gains as before
		}
		for _, id := range in0.edges[:in0.ne] {
			e := ix.in.Edge(id)
			if m.Remap != nil {
				if m.Remap[e.U] == graph.NoNode || m.Remap[e.V] == graph.NoNode {
					continue
				}
				e = m.rename(e)
			}
			buf = append(buf, graph.PackEdge(e))
		}
	}
	for nt := range byTarget {
		for _, r := range byTarget[nt] {
			for _, e := range r.edges[:r.ne] {
				buf = append(buf, graph.PackEdge(e))
			}
		}
	}
	slices.Sort(buf)
	buf = slices.Compact(buf)
	ix.sc.touched = buf
	out := make([]graph.Edge, len(buf))
	for i, p := range buf {
		out[i] = graph.UnpackEdge(p)
	}
	return out
}

// respelledEdge marks, in wireIncremental's old→new edge-id table, a
// surviving edge whose spelling changed under the node remap: its new id is
// resolved by a binary search over the new universe instead.
const respelledEdge graph.EdgeID = -2

// wireIncremental rewires the index's whole flat state — interned
// universe, instance table, gains, CSR incidences, heap — around the
// surviving instances and the freshly enumerated buffers, without the full
// builder's re-sort of every incidence and per-incidence re-interning.
//
// The old universe already ascends in canonical packed order, and PackEdge
// order is spelling order, so the new universe is a merge of two sorted
// sequences: the surviving same-spelling old edges (a monotone filter of
// the old universe), and a small "extras" set — surviving edges re-spelled
// by the node remap plus every edge of an enumerated instance — that is
// sorted on its own. Surviving instances then renumber their edge ids
// through an old→new table (O(1) each); only re-spelled and enumerated
// edges pay a binary search. The result is keyed identically to a full
// build on the same instance multiset — same universe, same gains, same
// heap order — which the parity suites pin against fresh NewIndex builds.
//
// Like every apply, recorded protector deletions are discarded: the rebuilt
// state starts fully alive.
func (ix *Index) wireIncremental(newTargets []graph.Edge, newIdx []int, enum, killed []bool, m *Mutation, byTarget [][]rawInstance) {
	oldIn := ix.in
	oldNE := oldIn.NumEdges()

	// Surviving incidence counts over the old universe (old ids). An edge
	// left with no surviving incidence drops out, exactly as a fresh build
	// would never intern it.
	oldGain := scratchSlice(ix.sc.oldGain, oldNE)
	ix.sc.oldGain = oldGain
	clear(oldGain)
	survives := func(i int) bool {
		nt := newIdx[ix.inst[i].target]
		return nt >= 0 && !enum[nt] && !killed[i]
	}
	for i := range ix.inst {
		if !survives(i) {
			continue
		}
		in0 := &ix.inst[i]
		for _, id := range in0.edges[:in0.ne] {
			oldGain[id]++
		}
	}

	// Classify the old universe: kept-in-place (same spelling) edges stream
	// out still sorted; re-spelled survivors join the extras.
	remapID := scratchSlice(ix.sc.remapID, oldNE)
	ix.sc.remapID = remapID
	kept := ix.sc.kept[:0]
	extras := ix.sc.extras[:0]
	for id := 0; id < oldNE; id++ {
		if oldGain[id] == 0 {
			remapID[id] = graph.NoEdge
			continue
		}
		e := oldIn.Edge(graph.EdgeID(id))
		if m.Remap != nil && (m.Remap[e.U] != e.U || m.Remap[e.V] != e.V) {
			remapID[id] = respelledEdge
			extras = append(extras, graph.PackEdge(m.rename(e)))
			continue
		}
		remapID[id] = graph.EdgeID(len(kept)) // provisional: index into kept
		kept = append(kept, graph.PackEdge(e))
	}
	for nt := range byTarget {
		for _, r := range byTarget[nt] {
			for _, e := range r.edges[:r.ne] {
				extras = append(extras, graph.PackEdge(e))
			}
		}
	}
	slices.Sort(extras)
	extras = slices.Compact(extras)

	ix.sc.kept, ix.sc.extras = kept, extras

	// Merge kept and extras into the new universe (freshly allocated — the
	// interner retains it), recording where each kept edge landed so
	// remapID can be finalised.
	packed := make([]uint64, 0, len(kept)+len(extras))
	fin := scratchSlice(ix.sc.fin, len(kept))
	ix.sc.fin = fin
	i, j := 0, 0
	for i < len(kept) || j < len(extras) {
		switch {
		case j >= len(extras) || (i < len(kept) && kept[i] <= extras[j]):
			if j < len(extras) && kept[i] == extras[j] {
				j++
			}
			fin[i] = graph.EdgeID(len(packed))
			packed = append(packed, kept[i])
			i++
		default:
			packed = append(packed, extras[j])
			j++
		}
	}
	for id := 0; id < oldNE; id++ {
		if remapID[id] >= 0 {
			remapID[id] = fin[remapID[id]]
		}
	}
	in := graph.NewInternerFromPacked(packed)

	// Compact the instance table in place: survivors renumber their target
	// and edge ids (re-spelled edges resolve against the new universe) and
	// revive; enumerated instances append after them, resolved the same
	// way. Instance order within the table is unobservable — every exposed
	// quantity (similarities, gains, per-target splits, heap order) is an
	// aggregate over it.
	out := ix.inst[:0]
	for idx := range ix.inst {
		if !survives(idx) {
			continue
		}
		in0 := ix.inst[idx]
		in0.dead = false
		in0.target = int32(newIdx[in0.target])
		for j, id := range in0.edges[:in0.ne] {
			if nw := remapID[id]; nw != respelledEdge {
				in0.edges[j] = nw
			} else {
				in0.edges[j] = in.ID(m.rename(oldIn.Edge(id)))
			}
		}
		out = append(out, in0)
	}
	for nt := range byTarget {
		for _, r := range byTarget[nt] {
			inst := indexedInstance{target: int32(nt), ne: r.ne}
			for j, e := range r.edges[:r.ne] {
				inst.edges[j] = in.ID(e)
			}
			out = append(out, inst)
		}
	}
	ix.inst = out
	ix.in = in
	ix.targets = newTargets

	ix.gain = make([]int32, len(packed))
	ix.perTarget = make([]int, len(newTargets))
	for idx := range ix.inst {
		in0 := &ix.inst[idx]
		ix.perTarget[in0.target]++
		for _, id := range in0.edges[:in0.ne] {
			ix.gain[id]++
		}
	}
	ix.alive = len(ix.inst)
	ix.wireFlat()
}

// canonEdge returns e in canonical (U < V) form.
func canonEdge(e graph.Edge) graph.Edge {
	if !e.Canonical() {
		return graph.Edge{U: e.V, V: e.U}
	}
	return e
}

// CanCreateInstances reports whether inserting the edge e — already present
// in g — could have created any instance of pattern for target t. It is the
// same conservative-but-sound structural test ApplyDelta uses to restrict
// re-enumeration (see insertTouches): a false answer proves t's instance
// set cannot contain e, so callers maintaining an invariant over a stream
// of insertions (tpp.Guard) can skip targets — usually all of them —
// without enumerating anything.
func CanCreateInstances(g *graph.Graph, pattern Pattern, t, e graph.Edge) bool {
	return insertTouches(pattern, t, e, func(x, y graph.NodeID) bool { return g.HasEdge(x, y) })
}

// applyRemovals is the removal-only maintenance kernel behind ApplyDelta's
// fast path. It kills every instance containing a removed edge (named
// exactly by the CSR rows of the removed ids), then rewrites the index to
// the state a fresh build on the shrunken graph would produce: edges left
// with no incidence drop out of the interned universe, surviving instances
// keep their relative order, recorded protector deletions are discarded
// (an applied index starts fully alive), and the flat state is rewired.
//
// Because the old universe already ascends in canonical edge order, the
// surviving universe is a monotone filter of it: the rebuild is linear
// passes over the instance table and universe — no packed-edge sort, no
// per-instance ID() lookups, and crucially no target re-enumeration. It
// returns the number of instances killed plus the touched-edge set (the
// deduplicated edges of the killed instances — see ApplyStats.TouchedEdges).
func (ix *Index) applyRemovals(removed []graph.Edge) (int, []graph.Edge) {
	kill := make([]bool, len(ix.inst))
	nKilled := 0
	for _, e := range removed {
		id := ix.in.ID(e)
		if id == graph.NoEdge {
			continue // outside the universe: participated in no instance
		}
		for _, instID := range ix.instIDs[ix.instStart[id]:ix.instStart[id+1]] {
			if !kill[instID] {
				kill[instID] = true
				nKilled++
			}
		}
	}
	if nKilled == 0 {
		// Nothing interned was removed; the rebuilt state is exactly the
		// build-time state with protector deletions discarded.
		ix.Reset()
		return 0, nil
	}
	tbuf := ix.sc.touched[:0]
	for i := range ix.inst {
		if !kill[i] {
			continue
		}
		in := &ix.inst[i]
		for _, id := range in.edges[:in.ne] {
			tbuf = append(tbuf, graph.PackEdge(ix.in.Edge(id)))
		}
	}
	slices.Sort(tbuf)
	tbuf = slices.Compact(tbuf)
	ix.sc.touched = tbuf
	touched := make([]graph.Edge, len(tbuf))
	for i, p := range tbuf {
		touched[i] = graph.UnpackEdge(p)
	}

	// Surviving per-edge incidence counts over the fully-alive state.
	oldNE := ix.in.NumEdges()
	oldGain := make([]int32, oldNE)
	for i := range ix.inst {
		if kill[i] {
			continue
		}
		in := &ix.inst[i]
		for _, id := range in.edges[:in.ne] {
			oldGain[id]++
		}
	}

	// Compact the universe, preserving canonical order.
	remap := make([]graph.EdgeID, oldNE)
	packed := make([]uint64, 0, oldNE)
	for id := 0; id < oldNE; id++ {
		if oldGain[id] > 0 {
			remap[id] = graph.EdgeID(len(packed))
			packed = append(packed, graph.PackEdge(ix.in.Edge(graph.EdgeID(id))))
		} else {
			remap[id] = graph.NoEdge
		}
	}
	ne := len(packed)
	gain := make([]int32, ne)
	for id, nw := range remap {
		if nw != graph.NoEdge {
			gain[nw] = oldGain[id]
		}
	}
	ix.in = graph.NewInternerFromPacked(packed)
	ix.gain = gain

	// Compact the instance table in place, resolving edges to the new ids
	// and reviving any protector-dead survivors.
	out := ix.inst[:0]
	for i := range ix.inst {
		if kill[i] {
			continue
		}
		in := ix.inst[i]
		in.dead = false
		for j := range in.edges[:in.ne] {
			in.edges[j] = remap[in.edges[j]]
		}
		out = append(out, in)
	}
	ix.inst = out

	for ti := range ix.perTarget {
		ix.perTarget[ti] = 0
	}
	for i := range ix.inst {
		ix.perTarget[ix.inst[i].target]++
	}
	ix.alive = len(ix.inst)

	ix.wireFlat()
	return nKilled, touched
}

// insertTouches reports whether inserting the edge e could create an
// instance of pattern for target t, judged in the union graph via hasUnion.
// The test is conservative (it may flag a target that gains nothing) but
// sound: every edge of every instance of t — in the old or the new graph —
// satisfies a structural condition this test covers, so a target it clears
// provably has an unchanged instance set under insertions.
//
// The per-pattern conditions follow from where an instance edge can sit
// relative to the target (u, v):
//
//   - Triangle u–w–v: both edges are incident to u or v.
//   - Rectangle u–a–b–v: end edges are incident to u or v; the middle edge
//     (a, b) has its endpoints split across N(u) and N(v).
//   - RecTri: the 2-path edges are incident to u or v; the triangle edges
//     (u, x) and (x, w) are incident to u or to a common neighbor w of u
//     and v.
//   - Pentagon u–a–b–c–v: every edge has at least one endpoint within
//     distance 1 of u or v.
func insertTouches(pattern Pattern, t, e graph.Edge, hasUnion func(x, y graph.NodeID) bool) bool {
	if e.Has(t.U) || e.Has(t.V) {
		return true
	}
	u, v := t.U, t.V
	x, y := e.U, e.V
	switch pattern {
	case Triangle:
		return false // non-incident edges never sit in a triangle instance
	case Rectangle:
		return (hasUnion(x, u) && hasUnion(y, v)) || (hasUnion(y, u) && hasUnion(x, v))
	case RecTri:
		return (hasUnion(x, u) && hasUnion(x, v)) || (hasUnion(y, u) && hasUnion(y, v))
	case Pentagon:
		return hasUnion(x, u) || hasUnion(x, v) || hasUnion(y, u) || hasUnion(y, v)
	}
	panic("motif: invalid pattern")
}
