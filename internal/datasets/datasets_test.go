package datasets

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestArenasEmailSimShape(t *testing.T) {
	d := ArenasEmailSim(1)
	if d.Name != "arenas-email-sim" {
		t.Fatalf("name = %q", d.Name)
	}
	if d.Graph.NumNodes() != 1133 {
		t.Fatalf("nodes = %d, want 1133", d.Graph.NumNodes())
	}
	m := d.Graph.NumEdges()
	// Real Arenas-email has 5451 edges; the generator must land close.
	if m < 5000 || m > 6000 {
		t.Fatalf("edges = %d, want ≈5451", m)
	}
	if !d.Graph.IsConnected() {
		t.Fatal("growth models produce connected graphs")
	}
}

func TestArenasEmailSimDeterministic(t *testing.T) {
	a := ArenasEmailSim(7)
	b := ArenasEmailSim(7)
	if !reflect.DeepEqual(a.Graph.Edges(), b.Graph.Edges()) {
		t.Fatal("same seed produced different graphs")
	}
	c := ArenasEmailSim(8)
	if reflect.DeepEqual(a.Graph.Edges(), c.Graph.Edges()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestDBLPSimScales(t *testing.T) {
	d := DBLPSim(2000, 1)
	if d.Graph.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", d.Graph.NumNodes())
	}
	// Mean degree should be near the real network's ≈6.6 (m=3 → mean ≈6).
	mean := 2 * float64(d.Graph.NumEdges()) / float64(d.Graph.NumNodes())
	if mean < 4 || mean > 9 {
		t.Fatalf("mean degree = %v, want ≈6", mean)
	}
	if tiny := DBLPSim(1, 1); tiny.Graph.NumNodes() < 8 {
		t.Fatal("scale floor not applied")
	}
}

func TestSampleTargets(t *testing.T) {
	d := ArenasEmailSim(3)
	rng := rand.New(rand.NewSource(3))
	targets := SampleTargets(d.Graph, 20, rng)
	if len(targets) != 20 {
		t.Fatalf("targets = %d, want 20", len(targets))
	}
	seen := make(map[graph.Edge]bool)
	for _, tg := range targets {
		if !d.Graph.HasEdgeE(tg) {
			t.Fatalf("target %v not an edge", tg)
		}
		if seen[tg] {
			t.Fatalf("duplicate target %v", tg)
		}
		seen[tg] = true
	}
	// Asking for more targets than edges clamps.
	small := SampleTargets(d.Graph, d.Graph.NumEdges()+10, rng)
	if len(small) != d.Graph.NumEdges() {
		t.Fatalf("clamp failed: %d", len(small))
	}
}
