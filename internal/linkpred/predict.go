package linkpred

import (
	"slices"
	"sort"

	"repro/internal/graph"
)

// The adversary's forward tool: enumerate candidate missing links and rank
// them. Candidate generation follows the standard 2-hop heuristic — for
// every triangle-family index a pair without common neighbours scores 0,
// so only pairs at distance 2 can rank at all. (For Katz the 2-hop set is
// still where all the mass concentrates at small β.)

// Prediction is one scored candidate link.
type Prediction struct {
	Pair  graph.Edge
	Score float64
}

// CandidatePairs returns every non-adjacent node pair with at least one
// common neighbour, in canonical order. This is the complete support of
// all triangle-based indices.
//
// Candidates are collected as packed uint64 keys and deduplicated with one
// sort + compact instead of a hash set: the packed order equals canonical
// edge order, so the sweep needs no separate SortEdges pass and no hashing.
func CandidatePairs(g *graph.Graph) []graph.Edge {
	var packed []uint64
	n := g.NumNodes()
	for w := 0; w < n; w++ {
		nbrs := g.NeighborsView(graph.NodeID(w))
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				u, v := nbrs[i], nbrs[j] // u < v: rows are sorted ascending
				if g.HasEdge(u, v) {
					continue
				}
				packed = append(packed, graph.PackEdge(graph.Edge{U: u, V: v}))
			}
		}
	}
	slices.Sort(packed)
	packed = slices.Compact(packed)
	out := make([]graph.Edge, len(packed))
	for i, p := range packed {
		out[i] = graph.UnpackEdge(p)
	}
	return out
}

// TopPredictions scores every candidate pair under the index and returns
// the limit highest-scoring predictions (all of them when limit ≤ 0),
// ordered by descending score with canonical pair order breaking ties —
// the adversary's ranked guess list.
func TopPredictions(g *graph.Graph, kind IndexKind, limit int) []Prediction {
	cands := CandidatePairs(g)
	preds := make([]Prediction, 0, len(cands))
	for _, e := range cands {
		if s := Score(g, kind, e.U, e.V); s > 0 {
			preds = append(preds, Prediction{Pair: e, Score: s})
		}
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Score != preds[j].Score {
			return preds[i].Score > preds[j].Score
		}
		return preds[i].Pair.Less(preds[j].Pair)
	})
	if limit > 0 && len(preds) > limit {
		preds = preds[:limit]
	}
	return preds
}

// PrecisionAtK returns the fraction of the adversary's top-k predictions
// that are true hidden links — the standard link-prediction precision
// metric, here measuring re-identification risk of a release.
func PrecisionAtK(g *graph.Graph, kind IndexKind, hidden []graph.Edge, k int) float64 {
	if k <= 0 {
		return 0
	}
	isHidden := make(map[graph.Edge]bool, len(hidden))
	for _, e := range hidden {
		isHidden[e] = true
	}
	top := TopPredictions(g, kind, k)
	hits := 0
	for _, p := range top {
		if isHidden[p.Pair] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
