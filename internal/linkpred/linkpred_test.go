package linkpred

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/motif"
	"repro/internal/tpp"
)

// fig7Graph reconstructs the counterexample graph of paper Fig. 7: the
// (missing) target is (u, v) with deg(u)=3, deg(v)=4, two common neighbors
// c1 (deg 3) and c2 (deg 4). Protectors:
//
//	p1 = c1–z1   (changes c1's degree only)
//	p2 = u–c1    (removes c1 from the common neighborhood)
//	p3 = u–x     (shrinks Γ(u) without touching the intersection)
//	p4 = v–y1    (shrinks Γ(v) without touching the intersection)
func fig7Graph() (g *graph.Graph, u, v graph.NodeID, p1, p2, p3, p4 graph.Edge) {
	g = graph.New(10)
	u, v = 0, 1
	c1, c2 := graph.NodeID(2), graph.NodeID(3)
	x, y1, y2 := graph.NodeID(4), graph.NodeID(5), graph.NodeID(6)
	z1, z2, z3 := graph.NodeID(7), graph.NodeID(8), graph.NodeID(9)
	for _, e := range [][2]graph.NodeID{
		{u, c1}, {u, c2}, {u, x}, // deg(u) = 3
		{v, c1}, {v, c2}, {v, y1}, {v, y2}, // deg(v) = 4
		{c1, z1},           // deg(c1) = 3
		{c2, z2}, {c2, z3}, // deg(c2) = 4
	} {
		g.AddEdge(e[0], e[1])
	}
	return g, u, v,
		graph.NewEdge(c1, z1), graph.NewEdge(u, c1), graph.NewEdge(u, x), graph.NewEdge(v, y1)
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFig7InitialScores(t *testing.T) {
	g, u, v, _, _, _, _ := fig7Graph()
	for _, tc := range []struct {
		kind IndexKind
		want float64
	}{
		{CommonNeighbors, 2},
		{Jaccard, 2.0 / 5},
		{Salton, 2 / math.Sqrt(12)},
		{Sorensen, 4.0 / 7},
		{HubPromoted, 2.0 / 3},
		{HubDepressed, 2.0 / 4},
		{LeichtHolmeNewman, 2.0 / 12},
		{AdamicAdar, 1/math.Log(3) + 1/math.Log(4)},
		{ResourceAllocation, 1.0/3 + 1.0/4},
	} {
		if got := Score(g, tc.kind, u, v); !almostEqual(got, tc.want) {
			t.Errorf("%v initial score = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

// Paper Sec. VI-D: each classical index admits a deletion that *increases*
// the target's similarity score, so the induced dissimilarity function is
// not monotone and the greedy guarantees do not transfer. Each case below
// is one of the paper's explicit (a)/(b)/(c) scenarios.
func TestSectionVIDNonMonotonicity(t *testing.T) {
	g, u, v, p1, p2, p3, p4 := fig7Graph()
	scoreAfter := func(kind IndexKind, del graph.Edge) float64 {
		h := g.Clone()
		h.RemoveEdgeE(del)
		return Score(h, kind, u, v)
	}
	base := func(kind IndexKind) float64 { return Score(g, kind, u, v) }

	type caseSpec struct {
		kind   IndexKind
		same   *graph.Edge // deletion leaving the score unchanged (case a)
		lowers graph.Edge  // deletion lowering the score (case b: dissimilarity up)
		raises graph.Edge  // deletion raising the score (case c: monotonicity broken)
	}
	cases := []caseSpec{
		{kind: Jaccard, same: &p1, lowers: p2, raises: p3},
		{kind: Salton, same: &p1, lowers: p2, raises: p3},
		{kind: Sorensen, same: &p1, lowers: p2, raises: p3},
		{kind: HubPromoted, same: &p1, lowers: p2, raises: p3},
		{kind: HubDepressed, same: &p1, lowers: p2, raises: p4},
		{kind: LeichtHolmeNewman, same: &p1, lowers: p2, raises: p3},
		{kind: AdamicAdar, lowers: p2, raises: p1},
		{kind: ResourceAllocation, lowers: p2, raises: p1},
	}
	for _, c := range cases {
		b := base(c.kind)
		if c.same != nil {
			if got := scoreAfter(c.kind, *c.same); !almostEqual(got, b) {
				t.Errorf("%v: deleting case-a edge changed score %v -> %v", c.kind, b, got)
			}
		}
		if got := scoreAfter(c.kind, c.lowers); got >= b {
			t.Errorf("%v: case-b deletion should lower score, %v -> %v", c.kind, b, got)
		}
		if got := scoreAfter(c.kind, c.raises); got <= b {
			t.Errorf("%v: case-c deletion should RAISE score (non-monotone), %v -> %v", c.kind, b, got)
		}
	}
}

// Paper Sec. VI-D, link additions: adding edges never breaks existing
// target subgraphs, so similarity is non-decreasing under addition and the
// addition-based dissimilarity cannot be monotone-increasing.
func TestPropertyLinkAdditionNeverHelps(t *testing.T) {
	for _, pattern := range motif.Patterns {
		pattern := pattern
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := gen.BarabasiAlbertTriad(20, 3, 0.5, rng)
			targets := datasets.SampleTargets(g, 3, rng)
			work := g.Clone()
			for _, tg := range targets {
				work.RemoveEdgeE(tg)
			}
			before, _ := motif.CountAll(work, pattern, targets)
			// Add a random absent non-target edge.
			n := work.NumNodes()
			for tries := 0; tries < 64; tries++ {
				a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
				if a == b || work.HasEdge(a, b) {
					continue
				}
				e := graph.NewEdge(a, b)
				isTarget := false
				for _, tg := range targets {
					if tg == e {
						isTarget = true
						break
					}
				}
				if isTarget {
					continue
				}
				work.AddEdgeE(e)
				break
			}
			after, _ := motif.CountAll(work, pattern, targets)
			return after >= before
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("pattern %v: %v", pattern, err)
		}
	}
}

// Paper Sec. VI-D headline claim: a fully protected graph (total motif
// similarity zero under the Triangle pattern) drives every triangle-based
// index to score every target exactly 0 — the adversary's prediction
// probability vanishes.
func TestFullProtectionDefeatsTriangleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.BarabasiAlbertTriad(150, 4, 0.5, rng)
	targets := datasets.SampleTargets(g, 8, rng)
	p, err := tpp.NewProblem(g, motif.Triangle, targets)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := tpp.CriticalBudget(p, tpp.Options{Engine: tpp.EngineLazy})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullProtection() {
		t.Fatal("critical-budget run did not reach full protection")
	}
	released := p.ProtectedGraph(res.Protectors)
	for _, kind := range TriangleIndices {
		scores := TargetScores(released, kind, targets)
		if !AllZero(scores) {
			t.Fatalf("%v scores nonzero after full protection: %v", kind, scores)
		}
	}
}

func TestKatzScore(t *testing.T) {
	// Path 0-2-1: one 2-path between 0 and 1 → Katz = β².
	g := graph.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	beta := 0.1
	got := KatzScore(g, 0, 1, beta, 4)
	// paths 0→1: length 2 (0-2-1), length 4 (0-2-0-2-1, 0-2-1-2-1): walks
	// actually: Katz counts walks; with maxLen 4 there are 2 walks of
	// length 4.
	want := beta*beta + 2*math.Pow(beta, 4)
	if !almostEqual(got, want) {
		t.Fatalf("Katz = %v, want %v", got, want)
	}
}

func TestKatzZeroWhenDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := KatzScore(g, 0, 2, 0.1, 5); got != 0 {
		t.Fatalf("Katz across components = %v, want 0", got)
	}
}

func TestAUCExtremes(t *testing.T) {
	// Targets with common neighbors vs isolated-pair negatives: AUC = 1.
	g := graph.New(6)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	targets := []graph.Edge{graph.NewEdge(0, 1)}
	nonEdges := []graph.Edge{graph.NewEdge(3, 4), graph.NewEdge(4, 5)}
	if auc := AUC(g, CommonNeighbors, targets, nonEdges); auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
	// All scores zero → all ties → AUC = 0.5.
	g2 := graph.New(6)
	g2.AddEdge(0, 1)
	if auc := AUC(g2, CommonNeighbors, []graph.Edge{graph.NewEdge(2, 3)}, nonEdges); auc != 0.5 {
		t.Fatalf("tie AUC = %v, want 0.5", auc)
	}
	if auc := AUC(g2, CommonNeighbors, nil, nonEdges); auc != 0.5 {
		t.Fatalf("empty AUC = %v, want 0.5", auc)
	}
}

func TestSampleNonEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.Complete(6)
	g.RemoveEdge(0, 1)
	g.RemoveEdge(2, 3)
	exclude := []graph.Edge{graph.NewEdge(0, 1)}
	got := SampleNonEdges(g, 1, exclude, rng)
	if len(got) != 1 || got[0] != graph.NewEdge(2, 3) {
		t.Fatalf("SampleNonEdges = %v, want the only non-excluded non-edge 2-3", got)
	}
}

func TestRankTargets(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	targets := []graph.Edge{graph.NewEdge(0, 1)}
	pool := []graph.Edge{graph.NewEdge(3, 4), graph.NewEdge(4, 5)}
	reports := RankTargets(g, CommonNeighbors, targets, pool)
	if len(reports) != 1 {
		t.Fatal("one report expected")
	}
	r := reports[0]
	if r.Rank != 1 || r.PoolSize != 3 || r.Score != 1 {
		t.Fatalf("rank report = %+v", r)
	}
}

func TestIndexKindString(t *testing.T) {
	for _, k := range AllIndices {
		if s := k.String(); s == "" || s[0] == 'I' && s != "IndexKind(99)" && len(s) < 3 {
			t.Fatalf("bad name %q", s)
		}
	}
	if IndexKind(99).String() != "IndexKind(99)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestSummarizeDefense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := gen.BarabasiAlbertTriad(60, 3, 0.5, rng)
	targets := datasets.SampleTargets(g, 3, rng)
	lines := SummarizeDefense(g, targets, 20, rng)
	if len(lines) != len(TriangleIndices) {
		t.Fatalf("got %d lines, want %d", len(lines), len(TriangleIndices))
	}
}
