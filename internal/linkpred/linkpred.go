// Package linkpred implements the adversarial link-prediction methods the
// TPP threat model defends against (paper Sec. III-B and VI-D): the eight
// classical triangle-based similarity indices (Jaccard, Salton, Sørensen,
// Hub Promoted, Hub Depressed, Leicht–Holme–Newman, Adamic–Adar, Resource
// Allocation), plain common neighbours, and the Katz index the paper lists
// as future work.
//
// The package also provides the attack-evaluation harness: given a released
// (privacy-preserved) graph and the hidden target links, it measures how
// well each index re-identifies the targets among candidate non-edges
// (scores, ranks, and AUC). On a fully protected graph every triangle-based
// index scores every target exactly 0 (paper Sec. VI-D).
package linkpred

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// IndexKind identifies a similarity index.
type IndexKind int

const (
	CommonNeighbors IndexKind = iota
	Jaccard
	Salton
	Sorensen
	HubPromoted
	HubDepressed
	LeichtHolmeNewman
	AdamicAdar
	ResourceAllocation
	Katz
)

// TriangleIndices lists the eight triangle-based indices of paper Sec. VI-D
// plus plain common neighbours; all of them are exactly zero for node pairs
// with no common neighbour.
var TriangleIndices = []IndexKind{
	CommonNeighbors, Jaccard, Salton, Sorensen, HubPromoted,
	HubDepressed, LeichtHolmeNewman, AdamicAdar, ResourceAllocation,
}

// AllIndices is TriangleIndices plus Katz.
var AllIndices = append(append([]IndexKind(nil), TriangleIndices...), Katz)

// String returns the conventional index name.
func (k IndexKind) String() string {
	switch k {
	case CommonNeighbors:
		return "CommonNeighbors"
	case Jaccard:
		return "Jaccard"
	case Salton:
		return "Salton"
	case Sorensen:
		return "Sorensen"
	case HubPromoted:
		return "HubPromoted"
	case HubDepressed:
		return "HubDepressed"
	case LeichtHolmeNewman:
		return "LeichtHolmeNewman"
	case AdamicAdar:
		return "AdamicAdar"
	case ResourceAllocation:
		return "ResourceAllocation"
	case Katz:
		return "Katz"
	}
	return fmt.Sprintf("IndexKind(%d)", int(k))
}

// Score computes the similarity score of node pair (u, v) under the index.
// Higher scores mean the adversary considers the link more likely. For Katz
// it uses the default attenuation and path cutoff of KatzScore.
//
// Every triangle-based index is evaluated as one merge-join walk over the
// two sorted neighbor rows — common neighbors are never materialised, so
// scoring allocates nothing (Katz excepted: it carries walk-count vectors).
func Score(g *graph.Graph, kind IndexKind, u, v graph.NodeID) float64 {
	switch kind {
	case Katz:
		return KatzScore(g, u, v, DefaultKatzBeta, DefaultKatzMaxLen)
	case CommonNeighbors:
		return float64(g.CommonNeighborCount(u, v))
	case AdamicAdar:
		// Σ_{w ∈ Γ(u)∩Γ(v)} 1/log deg(w), accumulated during the join.
		s := 0.0
		g.EachCommonNeighbor(u, v, func(w graph.NodeID) {
			if d := float64(g.Degree(w)); d > 1 {
				s += 1 / math.Log(d)
			}
		})
		return s
	case ResourceAllocation:
		// Σ_{w ∈ Γ(u)∩Γ(v)} 1/deg(w), accumulated during the join.
		s := 0.0
		g.EachCommonNeighbor(u, v, func(w graph.NodeID) {
			if d := float64(g.Degree(w)); d > 0 {
				s += 1 / d
			}
		})
		return s
	}

	du, dv := float64(g.Degree(u)), float64(g.Degree(v))
	ncn := float64(g.CommonNeighborCount(u, v))
	switch kind {
	case Jaccard:
		union := du + dv - ncn
		if union == 0 {
			return 0
		}
		return ncn / union
	case Salton:
		if du == 0 || dv == 0 {
			return 0
		}
		return ncn / math.Sqrt(du*dv)
	case Sorensen:
		if du+dv == 0 {
			return 0
		}
		return 2 * ncn / (du + dv)
	case HubPromoted:
		m := math.Min(du, dv)
		if m == 0 {
			return 0
		}
		return ncn / m
	case HubDepressed:
		m := math.Max(du, dv)
		if m == 0 {
			return 0
		}
		return ncn / m
	case LeichtHolmeNewman:
		if du == 0 || dv == 0 {
			return 0
		}
		return ncn / (du * dv)
	}
	panic(fmt.Sprintf("linkpred: unknown index %v", kind))
}

// Katz parameters: β must satisfy β < 1/λ_max for the series to converge;
// the truncated sum up to DefaultKatzMaxLen is the standard practical form.
const (
	DefaultKatzBeta   = 0.005
	DefaultKatzMaxLen = 4
)

// KatzScore computes the truncated Katz index Σ_{l=2..maxLen} β^l ·
// (#paths of length l between u and v), via iterated sparse matrix-vector
// products from u. Length-1 paths (the direct edge) are excluded because
// the adversary scores *missing* links.
func KatzScore(g *graph.Graph, u, v graph.NodeID, beta float64, maxLen int) float64 {
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[u] = 1
	score := 0.0
	bl := 1.0
	for l := 1; l <= maxLen; l++ {
		bl *= beta
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < n; i++ {
			if cur[i] == 0 {
				continue
			}
			c := cur[i]
			for _, w := range g.NeighborsView(graph.NodeID(i)) {
				next[w] += c
			}
		}
		cur, next = next, cur
		if l >= 2 {
			score += bl * cur[v]
		}
	}
	return score
}
