package linkpred

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Attack evaluation: the adversary holds the released graph and scores node
// pairs with a similarity index, hoping the hidden targets rank high. These
// helpers quantify that risk.

// TargetScores returns the index score of every target pair on the released
// graph, in target order.
func TargetScores(released *graph.Graph, kind IndexKind, targets []graph.Edge) []float64 {
	out := make([]float64, len(targets))
	for i, t := range targets {
		out[i] = Score(released, kind, t.U, t.V)
	}
	return out
}

// AllZero reports whether every score is exactly zero — the paper's "full
// protection defends all triangle-based predictions" condition.
func AllZero(scores []float64) bool {
	for _, s := range scores {
		if s != 0 {
			return false
		}
	}
	return true
}

// SampleNonEdges draws count node pairs uniformly from the non-edges of g,
// excluding the given pairs (the hidden targets, which are non-edges of the
// released graph but must not be drawn as negatives).
func SampleNonEdges(g *graph.Graph, count int, exclude []graph.Edge, rng *rand.Rand) []graph.Edge {
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	ex := make(map[graph.Edge]bool, len(exclude))
	for _, e := range exclude {
		ex[e] = true
	}
	seen := make(map[graph.Edge]bool, count)
	out := make([]graph.Edge, 0, count)
	for len(out) < count {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if g.HasEdgeE(e) || ex[e] || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// AUC estimates the area under the ROC curve of the adversary's ranking:
// the probability that a random target outscores a random non-edge, with
// ties counted half (the standard link-prediction AUC of Lü & Zhou).
// An AUC of 0.5 means the adversary does no better than chance.
func AUC(released *graph.Graph, kind IndexKind, targets, nonEdges []graph.Edge) float64 {
	if len(targets) == 0 || len(nonEdges) == 0 {
		return 0.5
	}
	ts := TargetScores(released, kind, targets)
	ns := TargetScores(released, kind, nonEdges)
	wins, ties := 0, 0
	for _, t := range ts {
		for _, x := range ns {
			switch {
			case t > x:
				wins++
			case t == x:
				ties++
			}
		}
	}
	total := len(ts) * len(ns)
	return (float64(wins) + 0.5*float64(ties)) / float64(total)
}

// RankReport describes how one target ranks among a candidate pool under
// one index.
type RankReport struct {
	Target graph.Edge
	Score  float64
	// Rank is the 1-based position of the target when all candidates and
	// the target are sorted by descending score (worst case for the
	// defender: ties rank the target highest among equals).
	Rank int
	// PoolSize is 1 + len(candidates).
	PoolSize int
}

// RankTargets ranks every target against the candidate non-edge pool.
func RankTargets(released *graph.Graph, kind IndexKind, targets, pool []graph.Edge) []RankReport {
	poolScores := TargetScores(released, kind, pool)
	sort.Float64s(poolScores)
	out := make([]RankReport, len(targets))
	for i, t := range targets {
		s := Score(released, kind, t.U, t.V)
		// Candidates with a strictly higher score outrank the target; ties
		// rank the target first among equals (defender's worst case).
		firstGreater := sort.Search(len(poolScores), func(j int) bool { return poolScores[j] > s })
		higher := len(poolScores) - firstGreater
		out[i] = RankReport{Target: t, Score: s, Rank: higher + 1, PoolSize: len(pool) + 1}
	}
	return out
}

// SummarizeDefense runs every triangle-based index against the released
// graph and returns a human-readable line per index with the max target
// score and AUC versus the sampled non-edge pool.
func SummarizeDefense(released *graph.Graph, targets []graph.Edge, poolSize int, rng *rand.Rand) []string {
	pool := SampleNonEdges(released, poolSize, targets, rng)
	var lines []string
	for _, kind := range TriangleIndices {
		scores := TargetScores(released, kind, targets)
		max := 0.0
		for _, s := range scores {
			if s > max {
				max = s
			}
		}
		auc := AUC(released, kind, targets, pool)
		lines = append(lines, fmt.Sprintf("%-20s max target score %.4f  AUC %.3f", kind, max, auc))
	}
	return lines
}
