package linkpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/motif"
	"repro/internal/tpp"
)

func TestCandidatePairs(t *testing.T) {
	// Path 0-1-2: the only 2-hop non-adjacent pair is (0,2).
	g := gen.Path(3)
	got := CandidatePairs(g)
	if len(got) != 1 || got[0] != graph.NewEdge(0, 2) {
		t.Fatalf("candidates = %v, want [0-2]", got)
	}
	// Complete graph: no candidates at all.
	if got := CandidatePairs(gen.Complete(5)); len(got) != 0 {
		t.Fatalf("K5 candidates = %v, want none", got)
	}
}

func TestTopPredictionsOrdering(t *testing.T) {
	// (0,1) has two common neighbours; (0,4) has one: CN must rank them in
	// that order.
	g := graph.New(6)
	for _, e := range [][2]graph.NodeID{{0, 2}, {2, 1}, {0, 3}, {3, 1}, {0, 5}, {5, 4}} {
		g.AddEdge(e[0], e[1])
	}
	preds := TopPredictions(g, CommonNeighbors, 0)
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	if preds[0].Pair != graph.NewEdge(0, 1) || preds[0].Score != 2 {
		t.Fatalf("top prediction = %+v, want 0-1 with score 2", preds[0])
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Score > preds[i-1].Score {
			t.Fatalf("predictions out of order at %d: %+v", i, preds)
		}
	}
	// Limit is honoured.
	if got := TopPredictions(g, CommonNeighbors, 1); len(got) != 1 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestPrecisionAtK(t *testing.T) {
	// Hidden link (0,1) with two common neighbours is the adversary's top
	// guess: precision@1 = 1.
	g := graph.New(5)
	for _, e := range [][2]graph.NodeID{{0, 2}, {2, 1}, {0, 3}, {3, 1}} {
		g.AddEdge(e[0], e[1])
	}
	hidden := []graph.Edge{graph.NewEdge(0, 1)}
	if p := PrecisionAtK(g, CommonNeighbors, hidden, 1); p != 1 {
		t.Fatalf("precision@1 = %v, want 1", p)
	}
	if p := PrecisionAtK(g, CommonNeighbors, hidden, 0); p != 0 {
		t.Fatalf("precision@0 = %v, want 0", p)
	}
}

// TPP's end-to-end guarantee through the adversary's actual tooling:
// before protection the hidden targets appear in the top predictions;
// after full protection their precision is exactly zero at every k.
func TestPrecisionCollapsesUnderTPP(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := gen.BarabasiAlbertTriad(120, 4, 0.6, rng)
	// Choose high-similarity edges as targets so the pre-protection attack
	// has real signal.
	var targets []graph.Edge
	for _, e := range g.Edges() {
		if g.CommonNeighborCount(e.U, e.V) >= 3 {
			targets = append(targets, e)
			if len(targets) == 4 {
				break
			}
		}
	}
	if len(targets) < 2 {
		t.Skip("graph too sparse for the scenario")
	}
	p, err := tpp.NewProblem(g, motif.Triangle, targets)
	if err != nil {
		t.Fatal(err)
	}
	naive := p.Phase1()
	before := PrecisionAtK(naive, CommonNeighbors, targets, 300)
	if before == 0 {
		t.Fatal("attack premise failed: no signal before protection")
	}
	_, res, err := tpp.CriticalBudget(p, tpp.Options{Engine: tpp.EngineLazy})
	if err != nil {
		t.Fatal(err)
	}
	released := p.ProtectedGraph(res.Protectors)
	for _, k := range []int{1, 10, 100} {
		if after := PrecisionAtK(released, CommonNeighbors, targets, k); after != 0 {
			t.Fatalf("precision@%d = %v after full protection, want 0", k, after)
		}
	}
}

// Property: every positively scored prediction under any triangle index
// is a CandidatePairs member, and scores on candidates are non-negative.
func TestPropertyPredictionsWithinSupport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbertTriad(30, 3, 0.5, rng)
		support := make(map[graph.Edge]bool)
		for _, e := range CandidatePairs(g) {
			support[e] = true
		}
		for _, kind := range TriangleIndices {
			for _, pr := range TopPredictions(g, kind, 0) {
				if pr.Score <= 0 || !support[pr.Pair] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
