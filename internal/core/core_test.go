package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/motif"
)

// The façade must be drop-in interchangeable with internal/tpp: build and
// solve a problem purely through core's names.
func TestFacadeEndToEnd(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	g.AddEdge(0, 3)
	g.AddEdge(3, 1)

	p, err := NewProblem(g, motif.Triangle, []graph.Edge{graph.NewEdge(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	kstar, res, err := CriticalBudget(p, Options{Engine: EngineLazy})
	if err != nil {
		t.Fatal(err)
	}
	if kstar != 2 || !res.FullProtection() {
		t.Fatalf("k* = %d, full = %v; want 2 triangles broken with 2 deletions", kstar, res.FullProtection())
	}

	budgets, err := TBDForProblem(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CTGreedy(p, budgets, Options{Engine: EngineIndexed}); err != nil {
		t.Fatal(err)
	}
	if _, err := WTGreedy(p, budgets, Options{Engine: EngineIndexed}); err != nil {
		t.Fatal(err)
	}
	if _, err := DBDForProblem(p, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OptimalSGB(p, 2); err != nil {
		t.Fatal(err)
	}
}
