// Package core is the stable façade over the paper's primary contribution.
//
// The implementation lives in repro/internal/tpp (problem model, greedy
// protector selection, budget division, baselines); this package re-exports
// the public surface under one roof so that examples, commands and external
// callers depend on a single import path. All names are type aliases —
// values flow freely between core and tpp.
package core

import (
	"repro/internal/tpp"
)

// Problem is one TPP instance. See tpp.Problem.
type Problem = tpp.Problem

// Result records a protector-selection run. See tpp.Result.
type Result = tpp.Result

// Options configures engine and candidate scope. See tpp.Options.
type Options = tpp.Options

// Engine and Scope enumerations.
type (
	Engine = tpp.Engine
	Scope  = tpp.Scope
)

// Engine and scope constants.
const (
	EngineRecount = tpp.EngineRecount
	EngineIndexed = tpp.EngineIndexed
	EngineLazy    = tpp.EngineLazy

	ScopeAllEdges        = tpp.ScopeAllEdges
	ScopeTargetSubgraphs = tpp.ScopeTargetSubgraphs
)

// Constructors and algorithms.
var (
	NewProblem = tpp.NewProblem

	SGBGreedy      = tpp.SGBGreedy
	CTGreedy       = tpp.CTGreedy
	WTGreedy       = tpp.WTGreedy
	CriticalBudget = tpp.CriticalBudget

	TBD           = tpp.TBD
	TBDForProblem = tpp.TBDForProblem
	DBD           = tpp.DBD
	DBDForProblem = tpp.DBDForProblem

	RandomDeletion            = tpp.RandomDeletion
	RandomDeletionFromTargets = tpp.RandomDeletionFromTargets
	OptimalSGB                = tpp.OptimalSGB
)
