package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) < tol }

func TestAveragePathLengthPath(t *testing.T) {
	// Path 0-1-2-3: distances 1,2,3,1,2,1 → mean 10/6.
	g := gen.Path(4)
	if got := AveragePathLength(g); !almostEqual(got, 10.0/6, 1e-12) {
		t.Fatalf("l = %v, want %v", got, 10.0/6)
	}
}

func TestAveragePathLengthComplete(t *testing.T) {
	if got := AveragePathLength(gen.Complete(6)); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("l(K6) = %v, want 1", got)
	}
}

func TestAveragePathLengthDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	// Only connected pairs count: both at distance 1.
	if got := AveragePathLength(g); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("l = %v, want 1", got)
	}
	if got := AveragePathLength(graph.New(1)); got != 0 {
		t.Fatalf("l of trivial graph = %v, want 0", got)
	}
}

func TestApproxAveragePathLength(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.BarabasiAlbertTriad(300, 3, 0.3, rng)
	exact := AveragePathLength(g)
	approx := ApproxAveragePathLength(g, 300, rng) // full sample = exact
	if !almostEqual(exact, approx, 1e-9) {
		t.Fatalf("full-sample approx %v != exact %v", approx, exact)
	}
	small := ApproxAveragePathLength(g, 30, rng)
	if math.Abs(small-exact) > 0.5 {
		t.Fatalf("sampled l = %v too far from exact %v", small, exact)
	}
}

func TestClusteringCoefficientKnown(t *testing.T) {
	if got := ClusteringCoefficient(gen.Complete(5)); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("clust(K5) = %v, want 1", got)
	}
	if got := ClusteringCoefficient(gen.Star(6)); got != 0 {
		t.Fatalf("clust(star) = %v, want 0", got)
	}
	if got := ClusteringCoefficient(gen.Cycle(6)); got != 0 {
		t.Fatalf("clust(C6) = %v, want 0", got)
	}
	// Triangle with one pendant: nodes 0,1,2 clique + 3 hanging off 0.
	g := gen.Complete(3)
	g.AddNode()
	g.AddEdge(0, 3)
	// clust: node0 = 1/3 (one closed pair of three), nodes 1,2 = 1, node3 deg 1 → 0.
	want := (1.0/3 + 1 + 1 + 0) / 4
	if got := ClusteringCoefficient(g); !almostEqual(got, want, 1e-12) {
		t.Fatalf("clust = %v, want %v", got, want)
	}
}

func TestAssortativityStarNegative(t *testing.T) {
	// Stars are maximally disassortative: r = -1.
	if got := Assortativity(gen.Star(8)); !almostEqual(got, -1, 1e-9) {
		t.Fatalf("r(star) = %v, want -1", got)
	}
}

func TestAssortativityRegularZero(t *testing.T) {
	// Degree-regular graphs have zero degree variance at edge ends.
	if got := Assortativity(gen.Cycle(10)); got != 0 {
		t.Fatalf("r(C10) = %v, want 0", got)
	}
	if got := Assortativity(gen.Complete(5)); got != 0 {
		t.Fatalf("r(K5) = %v, want 0", got)
	}
}

func TestCoreNumbersKnown(t *testing.T) {
	// K5: every node has core number 4.
	for v, c := range CoreNumbers(gen.Complete(5)) {
		if c != 4 {
			t.Fatalf("core(K5, %d) = %d, want 4", v, c)
		}
	}
	// Path: all cores 1.
	for v, c := range CoreNumbers(gen.Path(5)) {
		if c != 1 {
			t.Fatalf("core(path, %d) = %d, want 1", v, c)
		}
	}
	// Clique + pendant: pendant has core 1, clique nodes core 3.
	g := gen.Complete(4)
	g.AddNode()
	g.AddEdge(0, 4)
	cores := CoreNumbers(g)
	if cores[4] != 1 {
		t.Fatalf("pendant core = %d, want 1", cores[4])
	}
	for v := 0; v < 4; v++ {
		if cores[v] != 3 {
			t.Fatalf("clique core = %d, want 3", cores[v])
		}
	}
	if got := AverageCoreNumber(g); !almostEqual(got, (3*4+1)/5.0, 1e-12) {
		t.Fatalf("cn = %v", got)
	}
}

func TestTriangleCountPerNode(t *testing.T) {
	g := gen.Complete(4)
	for v := 0; v < 4; v++ {
		if got := TriangleCount(g, graph.NodeID(v)); got != 3 {
			t.Fatalf("triangles at %d = %d, want 3", v, got)
		}
	}
}

func TestLaplacianEigenvaluesComplete(t *testing.T) {
	// L(K_n) has eigenvalues {0, n, n, ..., n}: both top values are n.
	rng := rand.New(rand.NewSource(3))
	vals := LaplacianTopEigenvalues(gen.Complete(6), 2, rng)
	if !almostEqual(vals[0], 6, 1e-6) || !almostEqual(vals[1], 6, 1e-6) {
		t.Fatalf("top eigenvalues of K6 Laplacian = %v, want [6 6]", vals)
	}
}

func TestLaplacianEigenvaluesStar(t *testing.T) {
	// L(K_{1,n-1}) has eigenvalues {0, 1 (n-2 times), n}: top two are n, 1.
	rng := rand.New(rand.NewSource(4))
	vals := LaplacianTopEigenvalues(gen.Star(6), 2, rng)
	if !almostEqual(vals[0], 6, 1e-6) || !almostEqual(vals[1], 1, 1e-5) {
		t.Fatalf("top eigenvalues of star Laplacian = %v, want [6 1]", vals)
	}
	if mu := SecondLargestLaplacianEigenvalue(gen.Star(6), rand.New(rand.NewSource(5))); !almostEqual(mu, 1, 1e-5) {
		t.Fatalf("µ(star) = %v, want 1", mu)
	}
}

func TestLaplacianEigenvaluesCycle(t *testing.T) {
	// L(C_n) has eigenvalues 2 − 2cos(2πk/n). For C6: largest 4 (k=3),
	// second largest 3 (k=2,4).
	rng := rand.New(rand.NewSource(11))
	vals := LaplacianTopEigenvalues(gen.Cycle(6), 2, rng)
	if !almostEqual(vals[0], 4, 1e-6) || !almostEqual(vals[1], 3, 1e-5) {
		t.Fatalf("C6 Laplacian top eigenvalues = %v, want [4 3]", vals)
	}
}

func TestLaplacianEigenvaluePath2(t *testing.T) {
	// P2 (single edge): eigenvalues {0, 2}.
	rng := rand.New(rand.NewSource(6))
	vals := LaplacianTopEigenvalues(gen.Path(2), 2, rng)
	if !almostEqual(vals[0], 2, 1e-8) || !almostEqual(vals[1], 0, 1e-6) {
		t.Fatalf("P2 eigenvalues = %v, want [2 0]", vals)
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two K5 cliques joined by a single bridge: LP should find exactly the
	// two cliques.
	g := graph.New(10)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			g.AddEdge(graph.NodeID(u+5), graph.NodeID(v+5))
		}
	}
	g.AddEdge(4, 5)
	comm := LabelPropagation(g, rand.New(rand.NewSource(7)))
	for v := 1; v < 5; v++ {
		if comm[v] != comm[0] {
			t.Fatalf("left clique split: %v", comm)
		}
	}
	for v := 6; v < 10; v++ {
		if comm[v] != comm[5] {
			t.Fatalf("right clique split: %v", comm)
		}
	}
	if comm[0] == comm[5] {
		t.Fatalf("cliques merged: %v", comm)
	}
	q := Modularity(g, comm)
	if q < 0.3 {
		t.Fatalf("modularity %v too low for a clear 2-community graph", q)
	}
}

func TestModularityBounds(t *testing.T) {
	// One community covering everything has Q = 0... actually
	// Q = 1 - 1 = 0 for the trivial partition of any graph: intra = m,
	// degree fraction = 1.
	g := gen.Complete(5)
	comm := make([]int, 5)
	if q := Modularity(g, comm); !almostEqual(q, 0, 1e-12) {
		t.Fatalf("trivial partition Q = %v, want 0", q)
	}
	if q := Modularity(graph.New(3), []int{0, 1, 2}); q != 0 {
		t.Fatalf("empty graph Q = %v, want 0", q)
	}
}

func TestUtilityLossRatio(t *testing.T) {
	if got := UtilityLossRatio(2, 1.5); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("ulr = %v, want 0.25", got)
	}
	if got := UtilityLossRatio(0, 0); got != 0 {
		t.Fatalf("ulr(0,0) = %v, want 0", got)
	}
	if got := UtilityLossRatio(0, 1); !math.IsInf(got, 1) {
		t.Fatalf("ulr(0,1) = %v, want +Inf", got)
	}
	if got := UtilityLossRatio(-2, -1); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("ulr negative baseline = %v, want 0.5", got)
	}
}

func TestComputeAndAverageLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.BarabasiAlbertTriad(120, 3, 0.4, rng)
	orig := Compute(g, AllMetrics, rand.New(rand.NewSource(9)))
	if len(orig) != len(AllMetrics) {
		t.Fatalf("computed %d metrics, want %d", len(orig), len(AllMetrics))
	}
	// Identical graphs → zero loss (up to float summation order inside the
	// eigensolver, which follows Go's randomized map iteration).
	same := Compute(g, AllMetrics, rand.New(rand.NewSource(9)))
	per, mean := AverageUtilityLoss(orig, same)
	if mean > 1e-9 {
		t.Fatalf("self-loss = %v (per metric %v)", mean, per)
	}
	// Perturbed graph → small positive loss.
	h := g.Clone()
	edges := h.Edges()
	for i := 0; i < 10; i++ {
		h.RemoveEdgeE(edges[i*7])
	}
	rel := Compute(h, AllMetrics, rand.New(rand.NewSource(9)))
	_, mean2 := AverageUtilityLoss(orig, rel)
	if mean2 <= 0 || mean2 > 1 {
		t.Fatalf("perturbed loss = %v outside (0,1]", mean2)
	}
}

// Property: every metric is invariant under graph cloning, and deleting an
// edge never increases the core-number sum.
func TestPropertyCoreMonotoneUnderDeletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbertTriad(40, 3, 0.4, rng)
		sum := func(gr *graph.Graph) int {
			s := 0
			for _, c := range CoreNumbers(gr) {
				s += c
			}
			return s
		}
		before := sum(g)
		edges := g.Edges()
		g.RemoveEdgeE(edges[rng.Intn(len(edges))])
		return sum(g) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: clustering coefficient lies in [0,1]; assortativity in [-1,1].
func TestPropertyMetricRanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyiGNM(30, 60, rng)
		c := ClusteringCoefficient(g)
		r := Assortativity(g)
		return c >= 0 && c <= 1 && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
