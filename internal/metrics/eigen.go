package metrics

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Spectral utility metric µ (paper Table II): the second-largest eigenvalue
// of the graph Laplacian L = D − A. Computed matrix-free: power iteration
// over the implicit sparse Laplacian for the dominant pair, then Hotelling
// deflation for the second. L is symmetric PSD so both eigenvalues are real
// and the iteration is well behaved.

const (
	eigenIterations = 600
	eigenTolerance  = 1e-12
	// eigenShift σ makes the iteration operator L + σI strictly positive
	// definite. Without it, eigendirections with eigenvalue 0 are
	// annihilated exactly by the matvec and deflated power iteration
	// converges to numerical contamination instead of the true second
	// eigenvector (e.g. on a single edge, whose spectrum is {0, 2}).
	eigenShift = 1.0
)

// laplacianMatVec writes (L + σI)·x into out.
func laplacianMatVec(g *graph.Graph, x, out []float64) {
	for i := range out {
		v := graph.NodeID(i)
		s := (float64(g.Degree(v)) + eigenShift) * x[i]
		g.EachNeighbor(v, func(w graph.NodeID) bool {
			s -= x[w]
			return true
		})
		out[i] = s
	}
}

func normalize(x []float64) float64 {
	var n float64
	for _, v := range x {
		n += v * v
	}
	n = math.Sqrt(n)
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// powerIterate runs deflated power iteration: it finds the dominant
// eigenpair of L restricted to the complement of span(deflate...).
func powerIterate(g *graph.Graph, deflate [][]float64, rng *rand.Rand) (float64, []float64) {
	n := g.NumNodes()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	orthogonalize(x, deflate)
	normalize(x)
	y := make([]float64, n)
	lambda := 0.0
	for it := 0; it < eigenIterations; it++ {
		laplacianMatVec(g, x, y)
		orthogonalize(y, deflate)
		norm := normalize(y)
		x, y = y, x
		if math.Abs(norm-lambda) < eigenTolerance*math.Max(1, math.Abs(norm)) {
			lambda = norm
			break
		}
		lambda = norm
	}
	// Rayleigh quotient for the final estimate (more accurate than the
	// iterate norm when convergence is slow); undo the shift to report an
	// eigenvalue of L rather than L + σI.
	laplacianMatVec(g, x, y)
	lambda = dot(x, y) - eigenShift
	return lambda, x
}

func orthogonalize(x []float64, basis [][]float64) {
	for _, b := range basis {
		c := dot(x, b)
		for i := range x {
			x[i] -= c * b[i]
		}
	}
}

// LaplacianTopEigenvalues returns the k largest eigenvalues of L in
// descending order. Intended for small k (the metric needs k = 2).
func LaplacianTopEigenvalues(g *graph.Graph, k int, rng *rand.Rand) []float64 {
	out := make([]float64, 0, k)
	var basis [][]float64
	for i := 0; i < k; i++ {
		lambda, vec := powerIterate(g, basis, rng)
		out = append(out, lambda)
		basis = append(basis, vec)
	}
	return out
}

// SecondLargestLaplacianEigenvalue returns µ. Deterministic given the rng
// seed; the default experiments use a fixed seed so runs are reproducible.
func SecondLargestLaplacianEigenvalue(g *graph.Graph, rng *rand.Rand) float64 {
	if g.NumNodes() < 2 {
		return 0
	}
	vals := LaplacianTopEigenvalues(g, 2, rng)
	return vals[1]
}
