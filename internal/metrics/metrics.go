// Package metrics implements the graph-utility metrics of the TPP paper's
// Table II — average path length, clustering coefficient, assortativity,
// average core number, the second-largest Laplacian eigenvalue, and
// modularity — plus the utility-loss-ratio comparison used by Tables
// III–V. Everything is stdlib-only: the eigensolver is a power iteration
// with Hotelling deflation over the implicit sparse Laplacian, and
// communities for modularity come from deterministic label propagation.
package metrics

import (
	"math/rand"

	"repro/internal/graph"
)

// AveragePathLength returns l: the mean shortest-path distance over all
// connected node pairs, via exact all-pairs BFS. Cost O(n·m); use
// ApproxAveragePathLength for large graphs (the paper likewise skips l on
// DBLP).
func AveragePathLength(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)
	var sum float64
	var pairs int64
	for s := 0; s < n; s++ {
		g.BFSDistancesInto(graph.NodeID(s), dist, queue)
		for v := s + 1; v < n; v++ {
			if dist[v] > 0 {
				sum += float64(dist[v])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// ApproxAveragePathLength estimates l by BFS from `samples` uniformly
// chosen source nodes.
func ApproxAveragePathLength(g *graph.Graph, samples int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n < 2 || samples <= 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	perm := rng.Perm(n)[:samples]
	dist := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)
	var sum float64
	var pairs int64
	for _, s := range perm {
		g.BFSDistancesInto(graph.NodeID(s), dist, queue)
		for v := 0; v < n; v++ {
			if v != s && dist[v] > 0 {
				sum += float64(dist[v])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// TriangleCount returns the number of triangles incident to node v.
func TriangleCount(g *graph.Graph, v graph.NodeID) int {
	nbrs := g.NeighborsView(v) // read-only scan: the borrowed row is safe
	count := 0
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				count++
			}
		}
	}
	return count
}

// ClusteringCoefficient returns clust: the average local clustering
// coefficient over all nodes (nodes of degree < 2 contribute 0, the
// convention the paper's formula implies).
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < n; v++ {
		d := g.Degree(graph.NodeID(v))
		if d < 2 {
			continue
		}
		tri := TriangleCount(g, graph.NodeID(v))
		sum += 2 * float64(tri) / float64(d*(d-1))
	}
	return sum / float64(n)
}

// Assortativity returns r: the Pearson degree correlation over edges
// (Newman 2002). Returns 0 for graphs where the variance vanishes (e.g.
// regular graphs), matching the usual convention.
func Assortativity(g *graph.Graph) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	var sumJK, sumHalf, sumHalfSq float64
	g.EachEdge(func(e graph.Edge) bool {
		j := float64(g.Degree(e.U))
		k := float64(g.Degree(e.V))
		sumJK += j * k
		sumHalf += (j + k) / 2
		sumHalfSq += (j*j + k*k) / 2
		return true
	})
	num := sumJK/m - (sumHalf/m)*(sumHalf/m)
	den := sumHalfSq/m - (sumHalf/m)*(sumHalf/m)
	if den == 0 {
		return 0
	}
	return num / den
}

// CoreNumbers returns the k-shell (core) number of every node via the
// standard O(m) peeling algorithm of Batagelj & Zaveršnik.
func CoreNumbers(g *graph.Graph) []int {
	n := g.NumNodes()
	deg := g.Degrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int, n)
	vert := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = graph.NodeID(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		g.EachNeighbor(v, func(u graph.NodeID) bool {
			if core[u] > core[v] {
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				core[u]--
			}
			return true
		})
	}
	return core
}

// AverageCoreNumber returns cn: the mean core number over all nodes.
func AverageCoreNumber(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	sum := 0
	for _, c := range CoreNumbers(g) {
		sum += c
	}
	return float64(sum) / float64(n)
}
