package metrics

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Utility-loss reporting (paper Sec. VI-C, Tables III–V).

// MetricKind names one utility metric from Table II.
type MetricKind string

const (
	MetricPathLength    MetricKind = "l"     // average path length
	MetricClustering    MetricKind = "clust" // average clustering coefficient
	MetricAssortativity MetricKind = "r"     // assortativity coefficient
	MetricCoreNumber    MetricKind = "cn"    // average core number
	MetricEigenvalue    MetricKind = "mu"    // second largest Laplacian eigenvalue
	MetricModularity    MetricKind = "Mod"   // modularity of LP communities
)

// AllMetrics is the full Table II metric set (used on small graphs).
var AllMetrics = []MetricKind{
	MetricPathLength, MetricClustering, MetricAssortativity,
	MetricCoreNumber, MetricEigenvalue, MetricModularity,
}

// LargeGraphMetrics is the subset the paper computes on DBLP (Table V):
// clustering and core number only, because path length and the eigenvalue
// "can't be efficiently computed on a general server".
var LargeGraphMetrics = []MetricKind{MetricClustering, MetricCoreNumber}

// Compute evaluates the chosen metrics on g. Stochastic metrics (µ, Mod)
// use the supplied rng so runs are reproducible.
func Compute(g *graph.Graph, kinds []MetricKind, rng *rand.Rand) map[MetricKind]float64 {
	out := make(map[MetricKind]float64, len(kinds))
	for _, k := range kinds {
		switch k {
		case MetricPathLength:
			out[k] = AveragePathLength(g)
		case MetricClustering:
			out[k] = ClusteringCoefficient(g)
		case MetricAssortativity:
			out[k] = Assortativity(g)
		case MetricCoreNumber:
			out[k] = AverageCoreNumber(g)
		case MetricEigenvalue:
			out[k] = SecondLargestLaplacianEigenvalue(g, rng)
		case MetricModularity:
			out[k] = CommunityModularity(g, rng)
		}
	}
	return out
}

// UtilityLossRatio returns ulr(z, G, G') = |z(G) − z(G')| / |z(G)| for one
// metric value pair. When the original value is zero the ratio is defined
// as 0 if the perturbed value is also zero and +Inf otherwise (surfaced so
// callers notice degenerate baselines instead of dividing silently).
func UtilityLossRatio(orig, perturbed float64) float64 {
	if orig == 0 {
		if perturbed == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(orig-perturbed) / math.Abs(orig)
}

// AverageUtilityLoss computes the per-metric loss ratios between the
// original and released graphs and their mean — the quantity Tables III–V
// report.
func AverageUtilityLoss(origVals, relVals map[MetricKind]float64) (perMetric map[MetricKind]float64, mean float64) {
	perMetric = make(map[MetricKind]float64, len(origVals))
	keys := make([]string, 0, len(origVals))
	for k := range origVals {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var sum float64
	for _, ks := range keys {
		k := MetricKind(ks)
		r := UtilityLossRatio(origVals[k], relVals[k])
		perMetric[k] = r
		sum += r
	}
	if len(keys) == 0 {
		return perMetric, 0
	}
	return perMetric, sum / float64(len(keys))
}
