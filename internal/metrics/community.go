package metrics

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Community structure for the modularity metric (paper Table II, Mod).
// Communities come from asynchronous label propagation — deterministic
// given the rng seed — and Mod is Newman's modularity of that partition:
//
//	Q = Σ_c [ m_c/m − (d_c / 2m)² ]
//
// where m_c is the number of intra-community edges and d_c the total degree
// of community c.

const labelPropMaxRounds = 100

// LabelPropagation partitions the nodes of g into communities and returns
// a community ID per node (IDs are dense, 0-based, ordered by smallest
// member node).
func LabelPropagation(g *graph.Graph, rng *rand.Rand) []int {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	order := rng.Perm(n)
	counts := make(map[int]int)
	for round := 0; round < labelPropMaxRounds; round++ {
		changed := false
		for _, v := range order {
			if g.Degree(graph.NodeID(v)) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			g.EachNeighbor(graph.NodeID(v), func(w graph.NodeID) bool {
				counts[labels[w]]++
				return true
			})
			// Most frequent neighbor label, smallest label on ties —
			// deterministic given the visit order.
			best, bestCount := labels[v], 0
			keys := make([]int, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				if counts[k] > bestCount {
					best, bestCount = k, counts[k]
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Compact to dense IDs ordered by first appearance over node order.
	remap := make(map[int]int)
	out := make([]int, n)
	for v := 0; v < n; v++ {
		id, ok := remap[labels[v]]
		if !ok {
			id = len(remap)
			remap[labels[v]] = id
		}
		out[v] = id
	}
	return out
}

// Modularity returns Newman's Q for the given node→community assignment.
func Modularity(g *graph.Graph, community []int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	nc := 0
	for _, c := range community {
		if c+1 > nc {
			nc = c + 1
		}
	}
	intra := make([]float64, nc)
	degSum := make([]float64, nc)
	g.EachEdge(func(e graph.Edge) bool {
		if community[e.U] == community[e.V] {
			intra[community[e.U]]++
		}
		return true
	})
	for v := 0; v < g.NumNodes(); v++ {
		degSum[community[v]] += float64(g.Degree(graph.NodeID(v)))
	}
	q := 0.0
	for c := 0; c < nc; c++ {
		q += intra[c]/m - (degSum[c]/(2*m))*(degSum[c]/(2*m))
	}
	return q
}

// CommunityModularity runs label propagation then scores the partition.
func CommunityModularity(g *graph.Graph, rng *rand.Rand) float64 {
	return Modularity(g, LabelPropagation(g, rng))
}
