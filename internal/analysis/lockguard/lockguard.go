// Package lockguard enforces "guarded by" field annotations: a struct field
// whose declaration carries a `// guarded by <mutex>` comment may only be
// read or written while that mutex (a sync.Mutex or sync.RWMutex field of
// the same struct) is held on the same value.
//
// The check is intra-procedural and linear: within each function, a guarded
// access `x.field` is legal if an `x.mu.Lock()` (or RLock) textually
// precedes it with no intervening non-deferred `x.mu.Unlock()` (RUnlock).
// Deferred unlocks run at return, so they do not end the critical section.
// Functions whose doc comment carries //tpp:locked declare "caller holds the
// lock" and are exempt. Remaining intentional accesses (e.g. constructors
// publishing a value no other goroutine can see yet) are waived with
// //lint:lockguard-ok <reason>.
//
// The linear scan deliberately over-approximates branches: a Lock in one
// arm of an if satisfies a later access. That trade keeps the checker
// simple and has no false negatives on straight-line critical sections,
// which is the shape this codebase uses.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"repro/internal/analysis"
)

// LockedDirective on a function's doc comment asserts its caller holds the
// relevant mutex.
const LockedDirective = "//tpp:locked"

// Analyzer is the lockguard check.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "flags accesses to `guarded by mu` fields made without holding the mutex",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotated field and the mutex field guarding it.
type guardedField struct {
	mutex string
}

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.HasDirective(fd.Doc, LockedDirective) {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuarded finds `// guarded by <name>` annotations on struct fields
// and resolves them to types.Var objects. A guard naming a field that is not
// a sync.Mutex/RWMutex of the same struct is itself a diagnostic: a typo in
// the annotation must not silently disable the check.
func collectGuarded(pass *analysis.Pass) map[types.Object]guardedField {
	guarded := make(map[types.Object]guardedField)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				if !hasMutexField(pass, st, mutex) {
					pass.Reportf(field.Pos(), "field annotated `guarded by %s` but the struct has no sync.Mutex/RWMutex field %s", mutex, mutex)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = guardedField{mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// hasMutexField reports whether the struct declares a sync.Mutex or
// sync.RWMutex field with the given name.
func hasMutexField(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, fn := range field.Names {
			if fn.Name != name {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				return false
			}
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
				return false
			}
			return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
		}
	}
	return false
}

// lockEvent is one Lock/Unlock call on a specific base expression's mutex.
type lockEvent struct {
	pos      token.Pos
	acquire  bool
	deferred bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]guardedField) {
	// Gather, per "base.mutex" spelling, the lock/unlock events.
	events := make(map[string][]lockEvent)
	var record func(n ast.Node, deferred bool)
	record = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if ds, ok := m.(*ast.DeferStmt); ok && !deferred {
				record(ds.Call, true)
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var acquire bool
			switch sel.Sel.Name {
			case "Lock", "RLock":
				acquire = true
			case "Unlock", "RUnlock":
				acquire = false
			default:
				return true
			}
			// sel.X must itself be base.mutex — key events by its spelling.
			key := types.ExprString(sel.X)
			events[key] = append(events[key], lockEvent{pos: call.Pos(), acquire: acquire, deferred: deferred})
			return true
		})
	}
	record(fd.Body, false)
	//lint:maporder-ok each key's event list is sorted in place; keys are independent
	for key := range events {
		sort.Slice(events[key], func(i, j int) bool { return events[key][i].pos < events[key][j].pos })
	}

	// Check every guarded selector access.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		gf, ok := guarded[obj]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if !heldAt(events[base+"."+gf.mutex], sel.Pos()) {
			pass.Reportf(sel.Pos(), "%s.%s accessed without holding %s.%s (annotate //lint:lockguard-ok <reason> if provably private)", base, sel.Sel.Name, base, gf.mutex)
		}
		return true
	})
}

// heldAt replays the lock events before pos: held if the most recent
// non-deferred event was an acquire (deferred unlocks run at return and are
// ignored).
func heldAt(events []lockEvent, pos token.Pos) bool {
	held := false
	for _, ev := range events {
		if ev.pos >= pos {
			break
		}
		if ev.deferred {
			continue
		}
		held = ev.acquire
	}
	return held
}
