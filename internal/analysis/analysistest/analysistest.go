// Package analysistest runs an analyzer over a golden fixture package and
// compares its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's dependency-free
// analysis core.
//
// A fixture line expecting diagnostics carries a trailing comment:
//
//	for k := range m { // want `iteration over map`
//
// Each string after `want` is a regular expression (quoted or backquoted)
// that must match the message of a diagnostic reported on that line; every
// diagnostic must be expected and every expectation must fire, so fixtures
// are simultaneously positive and negative tests.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRe extracts the expectation list from a comment.
var wantRe = regexp.MustCompile("// *want +(.*)$")

// expectation is one `// want` regexp with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// moduleDir locates the repository root (the module the fixtures' imports
// resolve against) from this source file's location.
func moduleDir(t *testing.T) string {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate analysistest source file")
	}
	// .../internal/analysis/analysistest/analysistest.go -> repo root.
	return filepath.Join(filepath.Dir(thisFile), "..", "..", "..")
}

// Fixture returns the path of a named fixture directory under the analysis
// testdata tree.
func Fixture(t *testing.T, name string) string {
	return filepath.Join(moduleDir(t), "internal", "analysis", "testdata", "src", name)
}

// Run loads the fixture package in dir, applies the analyzer, and reports
// every mismatch between diagnostics and `// want` expectations as a test
// error.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := load.LoadDir(dir, moduleDir(t))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	expectations := collectWants(t, pkg)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	analysis.SortDiagnostics(pkg.Fset, diags)
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		found := false
		for _, exp := range expectations {
			if exp.file == posn.Filename && exp.line == posn.Line && !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, exp := range expectations {
		if !exp.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", exp.file, exp.line, exp.re)
		}
	}
}

// collectWants parses the `// want` comments of every fixture file.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", posn, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return out
}

// parsePatterns splits a want payload into its quoted/backquoted regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			rest := s[1:]
			end := strings.Index(rest, `"`)
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, err
			}
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want pattern must be quoted or backquoted, got %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
