// Package viewretain enforces the borrow discipline of graph.NeighborsView:
// the returned slice aliases the graph's internal adjacency row, so it is
// invalidated by ANY subsequent mutation and must never outlive the
// borrowing function. The analyzer flags, within each function:
//
//   - a borrowed view that is returned to the caller;
//   - a borrowed view stored into a struct field, map/slice element, or
//     composite literal (escapes beyond the stack frame);
//   - a borrowed view used after a mutating method call on the same graph
//     value (straight-line order, plus the loop-carried case where the
//     mutation and the use share a loop body the binding does not);
//   - a mutating method call on the graph inside a loop ranging directly
//     over one of its views.
//
// The check is intra-procedural and name-based: borrow methods and mutator
// methods are recognised by name (NeighborsView; AddEdge/RemoveNode/... and
// ApplyToGraph taking the graph as argument), matching the graph package's
// actual API. False negatives through helper calls are accepted; the point
// is to catch the overwhelmingly common direct patterns mechanically.
// Deliberate safe retention is waived with //lint:viewretain-ok <reason>.
package viewretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the viewretain check.
var Analyzer = &analysis.Analyzer{
	Name: "viewretain",
	Doc:  "flags borrowed NeighborsView slices that escape or survive a graph mutation",
	Run:  run,
}

// borrowMethods return slices aliasing graph-internal storage.
var borrowMethods = map[string]bool{
	"NeighborsView": true,
}

// mutatorMethods invalidate every outstanding borrowed view of their receiver.
var mutatorMethods = map[string]bool{
	"AddEdge": true, "AddEdgeE": true, "AddNode": true,
	"RemoveEdge": true, "RemoveEdgeE": true, "RemoveEdges": true,
	"RemoveNode": true, "RemoveNodes": true,
}

// argMutators mutate the graph passed as their sole argument
// (motif.Mutation.ApplyToGraph and friends).
var argMutators = map[string]bool{
	"ApplyToGraph": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// borrowCall matches g.NeighborsView(...) and returns the receiver's
// canonical spelling ("g", "s.g", ...) for aliasing comparisons.
func borrowCall(call *ast.CallExpr) (recv string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !borrowMethods[sel.Sel.Name] {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// mutation matches a call that invalidates views of some graph and returns
// that graph's canonical spelling.
func mutation(call *ast.CallExpr) (recv string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", false
	}
	if mutatorMethods[sel.Sel.Name] {
		return types.ExprString(sel.X), true
	}
	if argMutators[sel.Sel.Name] && len(call.Args) >= 1 {
		return types.ExprString(call.Args[0]), true
	}
	return "", false
}

// binding is one `v := g.NeighborsView(...)` in the function.
type binding struct {
	obj  types.Object
	recv string
	pos  token.Pos
}

// span is a loop body's position extent.
type span struct{ start, end token.Pos }

func (s span) contains(p token.Pos) bool { return s.start <= p && p <= s.end }

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var bindings []binding
	var mutations []struct {
		recv string
		pos  token.Pos
	}
	var loops []span

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
			// Mutating the graph while ranging directly over its view.
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, ok := borrowCall(call); ok {
					ast.Inspect(x.Body, func(m ast.Node) bool {
						if mc, ok := m.(*ast.CallExpr); ok {
							if mrecv, ok := mutation(mc); ok && mrecv == recv {
								pass.Reportf(mc.Pos(), "%s mutated while ranging over its borrowed NeighborsView", recv)
							}
						}
						return true
					})
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					recv, ok := borrowCall(call)
					if !ok {
						continue
					}
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							bindings = append(bindings, binding{obj: obj, recv: recv, pos: x.Pos()})
						}
					}
					// Assigning a view into a field/element retains it.
					if escapeTarget(x.Lhs[i]) {
						pass.Reportf(x.Pos(), "borrowed NeighborsView of %s stored in %s; it is invalidated by the next mutation", recv, types.ExprString(x.Lhs[i]))
					}
				}
			}
		case *ast.CallExpr:
			if recv, ok := mutation(x); ok {
				mutations = append(mutations, struct {
					recv string
					pos  token.Pos
				}{recv, x.Pos()})
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if call, ok := res.(*ast.CallExpr); ok {
					if recv, ok := borrowCall(call); ok {
						pass.Reportf(res.Pos(), "borrowed NeighborsView of %s returned; return a copy (Neighbors) instead", recv)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if call, ok := val.(*ast.CallExpr); ok {
					if recv, ok := borrowCall(call); ok {
						pass.Reportf(val.Pos(), "borrowed NeighborsView of %s stored in composite literal; it is invalidated by the next mutation", recv)
					}
				}
			}
		}
		return true
	})

	if len(bindings) == 0 {
		return
	}

	// Uses of bound views: returned, stored, or read after a mutation of the
	// same graph.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, b := range bindings {
			if b.obj != obj || id.Pos() <= b.pos {
				continue
			}
			for _, m := range mutations {
				if m.recv != b.recv {
					continue
				}
				if b.pos < m.pos && m.pos < id.Pos() {
					pass.Reportf(id.Pos(), "borrowed NeighborsView %s used after %s was mutated; re-fetch the view", id.Name, b.recv)
					return true
				}
				// Loop-carried: mutation and use share a loop body entered
				// after the binding, so iteration N+1 reads a stale view.
				for _, l := range loops {
					if b.pos < l.start && l.contains(m.pos) && l.contains(id.Pos()) {
						pass.Reportf(id.Pos(), "borrowed NeighborsView %s used in a loop that also mutates %s; re-fetch it inside the loop", id.Name, b.recv)
						return true
					}
				}
			}
		}
		return true
	})

	// Bound views escaping through returns and field stores.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := res.(*ast.Ident); ok {
					if b := boundTo(pass, bindings, id); b != nil {
						pass.Reportf(res.Pos(), "borrowed NeighborsView %s returned; return a copy (Neighbors) instead", id.Name)
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				if id, ok := rhs.(*ast.Ident); ok && escapeTarget(x.Lhs[i]) {
					if b := boundTo(pass, bindings, id); b != nil {
						pass.Reportf(x.Pos(), "borrowed NeighborsView %s stored in %s; it is invalidated by the next mutation", id.Name, types.ExprString(x.Lhs[i]))
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, ok := val.(*ast.Ident); ok {
					if b := boundTo(pass, bindings, id); b != nil {
						pass.Reportf(val.Pos(), "borrowed NeighborsView %s stored in composite literal; it is invalidated by the next mutation", id.Name)
					}
				}
			}
		}
		return true
	})
}

// boundTo returns the binding id refers to, if any (and only for uses after
// the binding site).
func boundTo(pass *analysis.Pass, bindings []binding, id *ast.Ident) *binding {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	for i := range bindings {
		if bindings[i].obj == obj && id.Pos() > bindings[i].pos {
			return &bindings[i]
		}
	}
	return nil
}

// escapeTarget reports whether assigning to lhs retains the value beyond the
// local frame: struct fields and map/slice elements.
func escapeTarget(lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}
