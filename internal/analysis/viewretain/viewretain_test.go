package viewretain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/viewretain"
)

func TestViewRetain(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t, "viewretain"), viewretain.Analyzer)
}
