// Package load type-checks Go packages for the tpplint analyzers without
// golang.org/x/tools/go/packages (the module is dependency-free): package
// discovery and export-data paths come from `go list -export -json`, syntax
// from go/parser, and types from go/types with a gc-export-data importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the JSON
// package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to gc export-data files. The table is
// seeded by the batch loader and extended lazily (one `go list -export` per
// miss) for fixture packages whose imports were not pre-listed.
type exportLookup struct {
	mu      sync.Mutex
	dir     string
	exports map[string]string
}

func (el *exportLookup) lookup(path string) (io.ReadCloser, error) {
	el.mu.Lock()
	file, ok := el.exports[path]
	el.mu.Unlock()
	if !ok {
		pkgs, err := goList(el.dir, "list", "-export", "-json=ImportPath,Export", path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		for _, p := range pkgs {
			if p.ImportPath == path {
				file = p.Export
			}
		}
		el.mu.Lock()
		el.exports[path] = file
		el.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// check parses and type-checks one package's files against the lookup table.
func check(fset *token.FileSet, importPath, dir string, goFiles []string, el *exportLookup) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", el.lookup)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}

// Load type-checks the packages matching the patterns (relative to dir; "."
// when empty), excluding test files — the analyzers police production code.
// One `go list -deps -export` walk supplies both the target file sets and
// the export data of every dependency, so no per-import subprocesses run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if dir == "" {
		dir = "."
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	el := &exportLookup{dir: dir, exports: make(map[string]string, len(listed))}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			el.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	out := make([]*Package, 0, len(targets))
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, p.ImportPath, p.Dir, p.GoFiles, el)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (every non-test .go
// file), resolving imports lazily against the module in moduleDir. This is
// the analysistest fixture loader: fixture directories live under testdata,
// outside the go tool's package graph, so they are parsed by hand.
func LoadDir(dir, moduleDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	el := &exportLookup{dir: moduleDir, exports: make(map[string]string)}
	return check(token.NewFileSet(), "fixture/"+filepath.Base(dir), dir, goFiles, el)
}
