// Package analysis is the repo's static-analysis core: a deliberately small,
// API-compatible subset of golang.org/x/tools/go/analysis (which cannot be
// vendored here — the module is dependency-free), plus the comment-directive
// conventions the tpplint analyzers share.
//
// The suite machine-enforces contracts the codebase otherwise states only in
// doc comments and tests:
//
//   - maporder: no order-dependent iteration over maps in deterministic paths;
//   - viewretain: borrowed graph.NeighborsView rows must not outlive the next
//     graph mutation or escape the borrowing function;
//   - hotalloc: functions annotated //tpp:hotpath must not contain allocating
//     constructs, so the zero-alloc kernels cannot regress silently;
//   - lockguard: struct fields annotated "guarded by mu" are only touched
//     while that mutex is held.
//
// Analyzers are intra-package and fact-free; they run over packages loaded by
// the sibling load package (standalone tpplint, CI) or handed over by go vet
// in -vettool mode.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring x/tools' analysis.Analyzer
// closely enough that the analyzers could be ported onto the real framework
// unchanged if the dependency ever becomes available.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and //lint: suppressions
	Doc  string // one-paragraph description of the contract enforced
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic that survives suppression.
	Report func(Diagnostic)

	lineComments map[string]map[int]string // filename -> line -> comment text
}

// Reportf records a finding unless the offending line (or the line directly
// above it) carries a matching //lint:<analyzer>-ok <reason> suppression.
// A suppression without a reason does not suppress: the annotation contract
// is that every waiver explains itself.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// suppressed reports whether pos is covered by a //lint:<name>-ok directive
// with a non-empty reason on its own line or the line above.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.lineComments == nil {
		p.lineComments = make(map[string]map[int]string)
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			lines := make(map[int]string)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					line := p.Fset.Position(c.Pos()).Line
					lines[line] += c.Text
				}
			}
			p.lineComments[name] = lines
		}
	}
	position := p.Fset.Position(pos)
	lines := p.lineComments[position.Filename]
	marker := "//lint:" + p.Analyzer.Name + "-ok"
	for _, line := range []int{position.Line, position.Line - 1} {
		text, ok := lines[line]
		if !ok {
			continue
		}
		if i := strings.Index(text, marker); i >= 0 {
			reason := strings.TrimSpace(text[i+len(marker):])
			if reason != "" {
				return true
			}
		}
	}
	return false
}

// HasDirective reports whether the comment group contains a comment line
// starting with the given directive (e.g. "//tpp:hotpath"). Directive
// comments follow the Go convention: no space after //, so go doc omits them.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// Parents maps every node in the file to its syntactic parent. Analyzers use
// it for "what encloses this statement" questions (enclosing block, loop
// nesting) that ast.Inspect alone cannot answer.
func Parents(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// SortDiagnostics orders diagnostics by position then analyzer name, the
// deterministic output order of every driver.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
