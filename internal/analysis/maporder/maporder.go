// Package maporder flags `for range` over maps: Go randomises map iteration
// order, so any map walk whose effects depend on visit order breaks the
// repo's bit-identical determinism contract (selections, canonical encodings,
// delta replay parity).
//
// A range over a map is accepted without annotation only when the analyzer
// can see it is order-insensitive:
//
//   - the loop binds no variables (`for range m`), so iterations are
//     indistinguishable;
//   - the body only folds elements with commutative integer updates
//     (x++, x--, x += e, x |= e, x &= e, x ^= e, x *= e);
//   - the body only collects keys/values into slices that are demonstrably
//     sorted later in the same block (sort.*, slices.Sort*, *.SortEdges, ...);
//   - the body is the map-clearing idiom `for k := range m { delete(m, k) }`.
//
// Everything else needs a `//lint:maporder-ok <reason>` annotation on the
// loop (or the line above), with a non-empty reason.
//
// Test files are exempt: the determinism contract is about shipped outputs
// (selections, encodings, replay parity), while test-side map walks are
// reference counters and set comparisons whose assertions are order-agnostic
// by construction — and CI runs the suite with -shuffle=on, which stresses
// order independence directly.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags order-dependent iteration over maps in deterministic paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		parents := analysis.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.TypesInfo.TypeOf(rs.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				return true // `for range m`: iterations are indistinguishable
			}
			if aggregateOnly(pass, rs.Body) {
				return true
			}
			if clearOnly(rs) {
				return true
			}
			if collectedThenSorted(pass, rs, parents) {
				return true
			}
			pass.Reportf(rs.Pos(), "iteration over map %s has randomized order; sort the keys or annotate //lint:maporder-ok <reason>", types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// aggregateOnly reports whether every statement in the body is a commutative
// integer fold, i.e. the loop's net effect is independent of visit order.
func aggregateOnly(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !integerTyped(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
			default:
				return false
			}
			if len(s.Lhs) != 1 || !integerTyped(pass, s.Lhs[0]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// clearOnly recognises the map-clearing idiom `for k := range m { delete(m, k) }`:
// the body is a single delete of the ranged key from the ranged map, which
// removes every entry regardless of visit order.
func clearOnly(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	return ok && arg1.Name == key.Name && types.ExprString(call.Args[0]) == types.ExprString(rs.X)
}

// integerTyped reports whether e has an integer basic type — the kinds whose
// += / |= / &= / ^= / *= folds commute (float addition does not, string
// concatenation does not).
func integerTyped(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// collectedThenSorted recognises the canonical determinisation idiom: the
// loop body only appends map keys/values to local slices, and each such
// slice is passed to a sorting call later in the same enclosing block.
func collectedThenSorted(pass *analysis.Pass, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) bool {
	// Every body statement must be `s = append(s, ...)` for an ident s.
	collected := make(map[types.Object]bool)
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return false
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		collected[obj] = true
	}
	if len(collected) == 0 {
		return false
	}
	// Each collected slice must be sorted after the loop in the same block.
	block, ok := parents[rs].(*ast.BlockStmt)
	if !ok {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if id := rootIdent(arg); id != nil {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && collected[obj] {
						delete(collected, obj)
					}
				}
			}
			return true
		})
	}
	return len(collected) == 0
}

// isSortCall recognises sort.*, slices.Sort* and Sort-prefixed helpers
// (e.g. graph.SortEdges) as sorting the slice they receive.
func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := sel.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
		return true
	}
	return strings.HasPrefix(sel.Sel.Name, "Sort")
}

// rootIdent unwraps selector/index/slice expressions to their base ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) == 1 {
				e = x.Args[0] // conversions like string(k)
				continue
			}
			return nil
		default:
			return nil
		}
	}
}
