// Package hotalloc enforces the zero-alloc discipline of the merge-join and
// selection kernels: inside a function whose doc comment carries the
// //tpp:hotpath directive, no allocating construct may appear. The kernels
// earn their benchmarks by appending into caller-owned scratch and indexing
// flat arrays; one stray make or closure in a per-candidate loop silently
// costs a GC cycle per selection step.
//
// Flagged constructs:
//
//   - make(...) and new(...)
//   - function literals (closures allocate their capture environment)
//   - slice, map and chan composite literals, and &T{...} of any type
//   - string <-> []byte / []rune conversions
//   - go statements (a goroutine is not an allocation-free construct)
//
// Calls into other functions are not traced — the discipline is per
// function, and callees that must stay allocation-free carry their own
// //tpp:hotpath. Intentional amortised or setup allocations inside a hot
// function are waived line by line with //lint:hotalloc-ok <reason>.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Directive marks a function as a steady-state hot path.
const Directive = "//tpp:hotpath"

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs in functions annotated " + Directive,
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, Directive) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && obj.Parent() == types.Universe {
					switch id.Name {
					case "make":
						pass.Reportf(x.Pos(), "make in hot path %s (annotate //lint:hotalloc-ok <reason> if amortised)", name)
					case "new":
						pass.Reportf(x.Pos(), "new in hot path %s", name)
					}
				}
			}
			if convAllocates(pass, x) {
				pass.Reportf(x.Pos(), "string/slice conversion allocates in hot path %s", name)
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocates in hot path %s", name)
			return true // still scan the closure body: it runs on the hot path too
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates in hot path %s", name)
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates in hot path %s", name)
			case *types.Chan:
				pass.Reportf(x.Pos(), "channel literal allocates in hot path %s", name)
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal allocates in hot path %s", name)
				}
			}
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement in hot path %s", name)
		}
		return true
	})
}

// convAllocates reports whether the call is a string<->[]byte/[]rune
// conversion, which copies its operand.
func convAllocates(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	to, from := tv.Type.Underlying(), pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return false
	}
	from = from.Underlying()
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
