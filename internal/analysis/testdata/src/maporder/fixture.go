// Fixture for the maporder analyzer: positive cases carry want comments,
// negative cases must stay silent.
package fixture

import "sort"

// flagged: visit order leaks into the result.
func concatKeys(m map[string]int) string {
	s := ""
	for k := range m { // want `iteration over map m has randomized order`
		s += k
	}
	return s
}

// flagged: order-dependent body behind a value range.
func firstValue(m map[string]int) int {
	for _, v := range m { // want `iteration over map m has randomized order`
		return v
	}
	return 0
}

// flagged: an annotation without a reason does not suppress.
//
//lint:maporder-ok
func annotatedWithoutReason(m map[string]int) string {
	s := ""
	//lint:maporder-ok
	for k := range m { // want `iteration over map m has randomized order`
		s += k
	}
	return s
}

// silent: a reasoned annotation on the line above waives the loop.
func annotatedWithReason(m map[string]int) string {
	s := ""
	//lint:maporder-ok result feeds an order-insensitive hash
	for k := range m {
		s += k
	}
	return s
}

// silent: no iteration variables, so iterations are indistinguishable.
func countIterations(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// silent: commutative integer folds are order-insensitive.
func sumValues(m map[string]int) (total int, bits uint64) {
	for _, v := range m {
		total += v
		bits |= uint64(v)
	}
	return total, bits
}

// silent: keys are collected and demonstrably sorted before use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// flagged: collected but never sorted in this block.
func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `iteration over map m has randomized order`
		keys = append(keys, k)
	}
	return keys
}

// silent: float accumulation is NOT waived as an aggregate (addition does
// not commute in rounding), so it must be annotated to pass.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `iteration over map m has randomized order`
		total += v
	}
	return total
}

// silent: the map-clearing idiom removes every key regardless of order.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// flagged: deleting from a different map is order-dependent (the body's
// effect depends on which keys m still holds when visited).
func clearOther(m, other map[string]int) {
	for k := range m { // want `iteration over map m has randomized order`
		delete(other, k)
	}
}

// silent: ranging over a slice is always fine.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
