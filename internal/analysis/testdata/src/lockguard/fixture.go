// Fixture for the lockguard analyzer: fields annotated `guarded by <mutex>`
// must only be touched while that mutex is held.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	m  map[string]int // guarded by mu
}

type rwstore struct {
	mu   sync.RWMutex
	hits int // guarded by mu
}

type typoed struct {
	mu sync.Mutex
	// guarded by lock
	count int // want `no sync.Mutex/RWMutex field lock`
}

// good: classic lock/access/unlock.
func (s *store) put(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// good: deferred unlock keeps the section open to the end.
func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// flagged: no lock at all.
func (s *store) size() int {
	return len(s.m) // want `s.m accessed without holding s.mu`
}

// flagged: the read happens after the critical section closed.
func (s *store) putThenRead(k string, v int) int {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
	return s.m[k] // want `s.m accessed without holding s.mu`
}

// good: read lock satisfies the guard on an RWMutex.
func (r *rwstore) load() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hits
}

// flagged: RWMutex guard still requires some lock.
func (r *rwstore) bump() {
	r.hits++ // want `r.hits accessed without holding r.mu`
}

// good: the caller holds the lock, declared via directive.
//
//tpp:locked
func (s *store) removeLocked(k string) {
	delete(s.m, k)
}

// good: a constructor touching a value no other goroutine can see yet is
// waived with a reason.
func newStore() *store {
	s := &store{}
	s.m = make(map[string]int) //lint:lockguard-ok fresh value, unpublished
	return s
}

// good: locking a different instance's mutex does not leak onto this one —
// each receiver spelling is tracked separately.
func transfer(a, b *store, k string) {
	a.mu.Lock()
	v := a.m[k]
	a.mu.Unlock()
	b.mu.Lock()
	b.m[k] = v
	b.mu.Unlock()
}

// flagged: holding a's lock does not cover b's field.
func leak(a, b *store, k string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.m[k] = a.m[k] // want `b.m accessed without holding b.mu`
}
