// Fixture for the viewretain analyzer: a self-contained graph with the same
// borrow/mutate API shape as repro/internal/graph.
package fixture

type NodeID = int32

// Graph mimics the real graph: NeighborsView borrows internal storage,
// AddEdge/RemoveEdge invalidate outstanding views.
type Graph struct{ adj [][]NodeID }

func (g *Graph) NeighborsView(n NodeID) []NodeID { return g.adj[n] }

func (g *Graph) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[n]))
	copy(out, g.adj[n])
	return out
}

func (g *Graph) AddEdge(u, v NodeID) bool    { g.adj[u] = append(g.adj[u], v); return true }
func (g *Graph) RemoveEdge(u, v NodeID) bool { return false }

// Mutation mirrors motif.Mutation: ApplyToGraph mutates its argument.
type Mutation struct{}

func (m *Mutation) ApplyToGraph(g *Graph) {}

type holder struct{ row []NodeID }

// flagged: the borrowed row escapes to the caller.
func returnedDirect(g *Graph, n NodeID) []NodeID {
	return g.NeighborsView(n) // want `borrowed NeighborsView of g returned`
}

// flagged: bound first, then returned.
func returnedBound(g *Graph, n NodeID) []NodeID {
	nbrs := g.NeighborsView(n)
	return nbrs // want `borrowed NeighborsView nbrs returned`
}

// flagged: stored into a struct field.
func storedField(g *Graph, h *holder, n NodeID) {
	h.row = g.NeighborsView(n) // want `borrowed NeighborsView of g stored in h.row`
}

// flagged: retained through a composite literal.
func storedLiteral(g *Graph, n NodeID) holder {
	return holder{row: g.NeighborsView(n)} // want `borrowed NeighborsView of g stored in composite literal`
}

// flagged: the view is read after the graph mutated underneath it.
func useAfterMutation(g *Graph, n NodeID) NodeID {
	nbrs := g.NeighborsView(n)
	g.AddEdge(n, n+1)
	return nbrs[0] // want `borrowed NeighborsView nbrs used after g was mutated`
}

// flagged: ApplyToGraph-style mutators taking the graph as argument count.
func useAfterApply(g *Graph, m *Mutation, n NodeID) NodeID {
	nbrs := g.NeighborsView(n)
	m.ApplyToGraph(g)
	return nbrs[0] // want `borrowed NeighborsView nbrs used after g was mutated`
}

// flagged: iteration N+1 reads a view invalidated in iteration N.
func loopCarried(g *Graph, n NodeID, rounds int) {
	nbrs := g.NeighborsView(n)
	for i := 0; i < rounds; i++ {
		_ = nbrs[0] // want `borrowed NeighborsView nbrs used in a loop that also mutates g`
		g.RemoveEdge(n, NodeID(i))
	}
}

// flagged: mutating the graph while ranging over its own view.
func mutateWhileRanging(g *Graph, n NodeID) {
	for _, w := range g.NeighborsView(n) {
		g.RemoveEdge(n, w) // want `g mutated while ranging over its borrowed NeighborsView`
	}
}

// silent: consume the view fully before mutating.
func consumeThenMutate(g *Graph, n NodeID) int {
	nbrs := g.NeighborsView(n)
	total := 0
	for _, w := range nbrs {
		total += int(w)
	}
	g.AddEdge(n, n+1)
	return total
}

// silent: mutating a different graph leaves the view valid.
func differentGraph(g, other *Graph, n NodeID) NodeID {
	nbrs := g.NeighborsView(n)
	other.AddEdge(n, n+1)
	return nbrs[0]
}

// silent: rebinding inside the loop re-fetches after each mutation.
func refetchInLoop(g *Graph, n NodeID, rounds int) {
	for i := 0; i < rounds; i++ {
		nbrs := g.NeighborsView(n)
		_ = nbrs
		g.RemoveEdge(n, NodeID(i))
	}
}

// silent: returning a copy is the documented escape hatch.
func returnCopy(g *Graph, n NodeID) []NodeID {
	return g.Neighbors(n)
}

// silent: a reasoned waiver.
func waived(g *Graph, h *holder, n NodeID) {
	h.row = g.NeighborsView(n) //lint:viewretain-ok holder dies before the next mutation, see caller
}
