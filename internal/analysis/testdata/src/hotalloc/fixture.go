// Fixture for the hotalloc analyzer: allocating constructs inside
// //tpp:hotpath functions are flagged; the same constructs in unannotated
// functions are not.
package fixture

// scan is a hot kernel: every allocating construct is a finding.
//
//tpp:hotpath
func scan(xs []int) int {
	buf := make([]int, len(xs)) // want `make in hot path scan`
	extra := []int{1, 2, 3}     // want `slice literal allocates in hot path scan`
	lookup := map[int]bool{}    // want `map literal allocates in hot path scan`
	p := new(int)               // want `new in hot path scan`
	box := &point{x: 1}         // want `&composite literal allocates in hot path scan`
	f := func(v int) int {      // want `closure allocates in hot path scan`
		return v * 2
	}
	go drain(buf) // want `go statement in hot path scan`
	total := *p + box.x + f(1)
	for _, v := range xs {
		total += v
	}
	_ = append(buf, extra...)
	_ = lookup
	return total
}

// convert is hot: string round-trips copy.
//
//tpp:hotpath
func convert(s string) int {
	b := []byte(s) // want `string/slice conversion allocates in hot path convert`
	t := string(b) // want `string/slice conversion allocates in hot path convert`
	return len(b) + len(t)
}

// amortised growth is legal when waived with a reason.
//
//tpp:hotpath
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //lint:hotalloc-ok growth to high-water mark, amortised across calls
	}
	return buf[:n]
}

// zeroAlloc is the discipline the kernels follow: index, append into the
// caller's buffer, no fresh memory.
//
//tpp:hotpath
func zeroAlloc(xs, buf []int) []int {
	for _, v := range xs {
		if v > 0 {
			buf = append(buf, v)
		}
	}
	return buf
}

// cold functions may allocate freely.
func cold(n int) []int {
	out := make([]int, n)
	f := func(i int) int { return i }
	for i := range out {
		out[i] = f(i)
	}
	return out
}

type point struct{ x int }

func drain([]int) {}
