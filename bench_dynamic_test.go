package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/motif"
	"repro/internal/tpp"
)

// Dynamic-graph ablation: maintaining the motif index under a batch of edge
// mutations incrementally (motif.Index.ApplyDelta — kill incident instances
// via the CSR table, re-enumerate only insert-touched targets) versus what
// a delta-unaware session must do — re-derive the phase-1 working graph
// (Problem.Phase1 clone) and re-enumerate every target from scratch.
// BENCH_dynamic.json records the measured gap.

type dynamicBench struct {
	pattern motif.Pattern
	targets []graph.Edge
	churn   *gen.Churn
	deltaK  int
}

// newDynamicBench builds the evolving fixture: a DBLP stand-in, sampled
// targets, a churn stream over the phase-1 graph, and a warm index.
func newDynamicBench(b *testing.B, pattern motif.Pattern, scale, nTargets, deltaK int) (*dynamicBench, *motif.Index) {
	b.Helper()
	ds := datasets.DBLPSim(scale, 12)
	rng := rand.New(rand.NewSource(99))
	targets := datasets.SampleTargets(ds.Graph, nTargets, rng)
	phase1 := ds.Graph.Clone()
	phase1.RemoveEdges(targets)
	churn := gen.NewChurn(phase1, targets, 0.5, rng)
	ix, err := motif.NewIndex(churn.Graph(), pattern, targets)
	if err != nil {
		b.Fatal(err)
	}
	return &dynamicBench{pattern: pattern, targets: targets, churn: churn, deltaK: deltaK}, ix
}

func dynamicBenchCases() []struct {
	name    string
	pattern motif.Pattern
	scale   int
	targets int
	deltaK  int
} {
	return []struct {
		name    string
		pattern motif.Pattern
		scale   int
		targets int
		deltaK  int
	}{
		{"Triangle", motif.Triangle, 4000, 64, 16},
		{"Rectangle", motif.Rectangle, 4000, 64, 16},
	}
}

// BenchmarkDynamicApplyIncremental measures maintaining the index under one
// delta batch (~0.13% of edges) with ApplyDelta: graph mutation is done by
// the churn stream, the index absorbs the batch incrementally.
func BenchmarkDynamicApplyIncremental(b *testing.B) {
	for _, c := range dynamicBenchCases() {
		b.Run(fmt.Sprintf("%s/scale=%d/delta=%d", c.name, c.scale, c.deltaK), func(b *testing.B) {
			fx, ix := newDynamicBench(b, c.pattern, c.scale, c.targets, c.deltaK)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ins, rem := fx.churn.Next(fx.deltaK)
				b.StartTimer()
				if _, err := ix.ApplyDelta(fx.churn.Graph(), ins, rem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicApplyPureRemoval measures the removal-only regime: a
// delta with no insertions never creates instances, so ApplyDelta can skip
// target re-enumeration entirely and only kill removal-incident instances
// (the pure-removal fast path). The churn stream is built with pInsert = 0
// so every batch is removals.
func BenchmarkDynamicApplyPureRemoval(b *testing.B) {
	for _, c := range dynamicBenchCases() {
		b.Run(fmt.Sprintf("%s/scale=%d/delta=%d", c.name, c.scale, c.deltaK), func(b *testing.B) {
			ds := datasets.DBLPSim(c.scale, 12)
			rng := rand.New(rand.NewSource(99))
			targets := datasets.SampleTargets(ds.Graph, c.targets, rng)
			phase1 := ds.Graph.Clone()
			phase1.RemoveEdges(targets)
			churn := gen.NewChurn(phase1, targets, 0, rng) // removals only
			ix, err := motif.NewIndex(churn.Graph(), c.pattern, targets)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ins, rem := churn.Next(c.deltaK)
				if len(ins) != 0 {
					// The removal pool drained; restart the stream on a
					// fresh clone so every timed apply stays removal-only.
					churn = gen.NewChurn(phase1, targets, 0, rng)
					if ix, err = motif.NewIndex(churn.Graph(), c.pattern, targets); err != nil {
						b.Fatal(err)
					}
					ins, rem = churn.Next(c.deltaK)
					if len(ins) != 0 {
						b.Fatal("pure-removal stream produced insertions")
					}
				}
				b.StartTimer()
				if _, err := ix.ApplyDelta(churn.Graph(), ins, rem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicFullRebuild measures the delta-unaware baseline on the
// same churn stream: re-derive the phase-1 working graph (clone) and
// re-enumerate every target with motif.NewIndex.
func BenchmarkDynamicFullRebuild(b *testing.B) {
	for _, c := range dynamicBenchCases() {
		b.Run(fmt.Sprintf("%s/scale=%d/delta=%d", c.name, c.scale, c.deltaK), func(b *testing.B) {
			fx, _ := newDynamicBench(b, c.pattern, c.scale, c.targets, c.deltaK)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fx.churn.Next(fx.deltaK)
				b.StartTimer()
				working := fx.churn.Graph().Clone()
				if _, err := motif.NewIndex(working, fx.pattern, fx.targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Session-mutation ablation (delta schema v2): absorbing full session
// deltas — node arrivals/departures, target add/drop, mixed with edge
// churn — through tpp.Protector.Apply on a warm session, versus what a
// delta-unaware design must do: build fresh session state on the mutated
// graph and target list (clone + phase-1 derivation + full motif.NewIndex
// enumeration). BENCH_sessionmut.json records the measured gap.

// newSessionMutationBench builds a warm evolving session and a lockstep
// mutation stream over DBLPSim(4000) with 64 targets.
func newSessionMutationBench(b *testing.B, pattern motif.Pattern, rates gen.ChurnRates) (*tpp.Protector, *gen.MutationChurn) {
	b.Helper()
	ds := datasets.DBLPSim(4000, 12)
	rng := rand.New(rand.NewSource(99))
	targets := datasets.SampleTargets(ds.Graph, 64, rng)
	session, err := tpp.New(ds.Graph, targets, tpp.WithPattern(pattern))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := session.Run(context.Background()); err != nil { // warm the index
		b.Fatal(err)
	}
	return session, gen.NewMutationChurn(ds.Graph, targets, rates, rng)
}

// benchSessionApply drives Apply over the churn stream, batches of deltaK.
func benchSessionApply(b *testing.B, pattern motif.Pattern, rates gen.ChurnRates, deltaK int) {
	session, churn := newSessionMutationBench(b, pattern, rates)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := dynamic.Delta(churn.Next(deltaK))
		b.StartTimer()
		if _, err := session.Apply(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicApplyNodeChurn measures absorbing pure node churn:
// arrivals (isolated joins) and departures (the node's edges leave with
// it), which exercise the swap-with-last remap through the whole stack —
// graph compaction, target renaming, index universe re-spelling.
func BenchmarkDynamicApplyNodeChurn(b *testing.B) {
	rates := gen.ChurnRates{NodeArrive: 0.5, NodeDepart: 0.5}
	for _, pattern := range []motif.Pattern{motif.Triangle, motif.Rectangle} {
		b.Run(fmt.Sprintf("%s/scale=4000/delta=8", pattern), func(b *testing.B) {
			benchSessionApply(b, pattern, rates, 8)
		})
	}
}

// BenchmarkDynamicApplyTargetChurn measures absorbing pure target churn: a
// dropped target's instances die through the CSR table, an added target
// enumerates only itself — never the other 63.
func BenchmarkDynamicApplyTargetChurn(b *testing.B) {
	rates := gen.ChurnRates{TargetAdd: 0.5, TargetDrop: 0.5}
	for _, pattern := range []motif.Pattern{motif.Triangle, motif.Rectangle} {
		b.Run(fmt.Sprintf("%s/scale=4000/delta=8", pattern), func(b *testing.B) {
			benchSessionApply(b, pattern, rates, 8)
		})
	}
}

// BenchmarkSessionMutationApply measures the headline mixed workload:
// deltas spanning edge churn, node churn and target churn (a k-event batch
// expands to more raw mutations — each departure takes its remaining
// incident edges with it), absorbed by a warm session.
func BenchmarkSessionMutationApply(b *testing.B) {
	for _, pattern := range []motif.Pattern{motif.Triangle, motif.Rectangle} {
		for _, deltaK := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s/scale=4000/delta=%d", pattern, deltaK), func(b *testing.B) {
				benchSessionApply(b, pattern, gen.DefaultChurnRates(), deltaK)
			})
		}
	}
}

// BenchmarkSessionMutationRebuild measures the delta-unaware baseline on
// the same mixed stream: construct a fresh session for the mutated graph
// and target list (tpp.New validation) and derive its cached state — the
// phase-1 graph clone and the full index enumeration its first Run pays.
func BenchmarkSessionMutationRebuild(b *testing.B) {
	for _, pattern := range []motif.Pattern{motif.Triangle, motif.Rectangle} {
		for _, deltaK := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s/scale=4000/delta=%d", pattern, deltaK), func(b *testing.B) {
				ds := datasets.DBLPSim(4000, 12)
				rng := rand.New(rand.NewSource(99))
				targets := datasets.SampleTargets(ds.Graph, 64, rng)
				churn := gen.NewMutationChurn(ds.Graph, targets, gen.DefaultChurnRates(), rng)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					churn.Next(deltaK)
					b.StartTimer()
					fresh, err := tpp.New(churn.Graph(), churn.Targets(), tpp.WithPattern(pattern))
					if err != nil {
						b.Fatal(err)
					}
					working := fresh.Problem().Phase1()
					if _, err := motif.NewIndex(working, pattern, fresh.Problem().Targets); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
