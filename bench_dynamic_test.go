package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/motif"
)

// Dynamic-graph ablation: maintaining the motif index under a batch of edge
// mutations incrementally (motif.Index.ApplyDelta — kill incident instances
// via the CSR table, re-enumerate only insert-touched targets) versus what
// a delta-unaware session must do — re-derive the phase-1 working graph
// (Problem.Phase1 clone) and re-enumerate every target from scratch.
// BENCH_dynamic.json records the measured gap.

type dynamicBench struct {
	pattern motif.Pattern
	targets []graph.Edge
	churn   *gen.Churn
	deltaK  int
}

// newDynamicBench builds the evolving fixture: a DBLP stand-in, sampled
// targets, a churn stream over the phase-1 graph, and a warm index.
func newDynamicBench(b *testing.B, pattern motif.Pattern, scale, nTargets, deltaK int) (*dynamicBench, *motif.Index) {
	b.Helper()
	ds := datasets.DBLPSim(scale, 12)
	rng := rand.New(rand.NewSource(99))
	targets := datasets.SampleTargets(ds.Graph, nTargets, rng)
	phase1 := ds.Graph.Clone()
	phase1.RemoveEdges(targets)
	churn := gen.NewChurn(phase1, targets, 0.5, rng)
	ix, err := motif.NewIndex(churn.Graph(), pattern, targets)
	if err != nil {
		b.Fatal(err)
	}
	return &dynamicBench{pattern: pattern, targets: targets, churn: churn, deltaK: deltaK}, ix
}

func dynamicBenchCases() []struct {
	name    string
	pattern motif.Pattern
	scale   int
	targets int
	deltaK  int
} {
	return []struct {
		name    string
		pattern motif.Pattern
		scale   int
		targets int
		deltaK  int
	}{
		{"Triangle", motif.Triangle, 4000, 64, 16},
		{"Rectangle", motif.Rectangle, 4000, 64, 16},
	}
}

// BenchmarkDynamicApplyIncremental measures maintaining the index under one
// delta batch (~0.13% of edges) with ApplyDelta: graph mutation is done by
// the churn stream, the index absorbs the batch incrementally.
func BenchmarkDynamicApplyIncremental(b *testing.B) {
	for _, c := range dynamicBenchCases() {
		b.Run(fmt.Sprintf("%s/scale=%d/delta=%d", c.name, c.scale, c.deltaK), func(b *testing.B) {
			fx, ix := newDynamicBench(b, c.pattern, c.scale, c.targets, c.deltaK)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ins, rem := fx.churn.Next(fx.deltaK)
				b.StartTimer()
				if _, err := ix.ApplyDelta(fx.churn.Graph(), ins, rem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicApplyPureRemoval measures the removal-only regime: a
// delta with no insertions never creates instances, so ApplyDelta can skip
// target re-enumeration entirely and only kill removal-incident instances
// (the pure-removal fast path). The churn stream is built with pInsert = 0
// so every batch is removals.
func BenchmarkDynamicApplyPureRemoval(b *testing.B) {
	for _, c := range dynamicBenchCases() {
		b.Run(fmt.Sprintf("%s/scale=%d/delta=%d", c.name, c.scale, c.deltaK), func(b *testing.B) {
			ds := datasets.DBLPSim(c.scale, 12)
			rng := rand.New(rand.NewSource(99))
			targets := datasets.SampleTargets(ds.Graph, c.targets, rng)
			phase1 := ds.Graph.Clone()
			phase1.RemoveEdges(targets)
			churn := gen.NewChurn(phase1, targets, 0, rng) // removals only
			ix, err := motif.NewIndex(churn.Graph(), c.pattern, targets)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ins, rem := churn.Next(c.deltaK)
				if len(ins) != 0 {
					// The removal pool drained; restart the stream on a
					// fresh clone so every timed apply stays removal-only.
					churn = gen.NewChurn(phase1, targets, 0, rng)
					if ix, err = motif.NewIndex(churn.Graph(), c.pattern, targets); err != nil {
						b.Fatal(err)
					}
					ins, rem = churn.Next(c.deltaK)
					if len(ins) != 0 {
						b.Fatal("pure-removal stream produced insertions")
					}
				}
				b.StartTimer()
				if _, err := ix.ApplyDelta(churn.Graph(), ins, rem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicFullRebuild measures the delta-unaware baseline on the
// same churn stream: re-derive the phase-1 working graph (clone) and
// re-enumerate every target with motif.NewIndex.
func BenchmarkDynamicFullRebuild(b *testing.B) {
	for _, c := range dynamicBenchCases() {
		b.Run(fmt.Sprintf("%s/scale=%d/delta=%d", c.name, c.scale, c.deltaK), func(b *testing.B) {
			fx, _ := newDynamicBench(b, c.pattern, c.scale, c.targets, c.deltaK)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fx.churn.Next(fx.deltaK)
				b.StartTimer()
				working := fx.churn.Graph().Clone()
				if _, err := motif.NewIndex(working, fx.pattern, fx.targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
